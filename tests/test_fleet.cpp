// Tests for the multi-tenant fleet runtime (ISSUE 10): batch-bucket tables,
// request coalescing numerics (batched execution bit-identical to singles,
// across the zoo), the WFQ + EDF + coalescing pickup policy, the
// ModelRegistry's cross-model cache sharing (PR-4 dedup), the virtual-time
// fleet simulator's accounting, and the real-threaded FleetServer
// (conservation per tenant, deterministic rejects, coalesced responses).

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <map>
#include <vector>

#include "compiler/compile_cache.hpp"
#include "models/model_zoo.hpp"
#include "profile/profile_cache.hpp"
#include "runtime/executor.hpp"
#include "runtime/plan.hpp"
#include "sched/batch_buckets.hpp"
#include "serve/batching.hpp"
#include "serve/fleet.hpp"
#include "serve/fleet_policy.hpp"
#include "serve/model_registry.hpp"
#include "serve/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace duet {
namespace {

using serve::FleetQueue;
using serve::FleetRequest;
using serve::ModelRegistry;
using serve::ModelRegistryOptions;
using serve::PickResult;
using serve::TenantClass;

// ---------------------------------------------------------------------------
// Batch buckets

TEST(BatchBuckets, SingleBucketWithoutBoundaries) {
  const auto buckets = make_batch_buckets({}, 8);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].lo, 1);
  EXPECT_EQ(buckets[0].hi, 8);
  EXPECT_EQ(bucket_for(buckets, 1), 0u);
  EXPECT_EQ(bucket_for(buckets, 8), 0u);
}

TEST(BatchBuckets, BoundariesSplitTheRange) {
  // Crossover flips at 4 and 16 over [1, 32]: three buckets.
  const auto buckets = make_batch_buckets({4, 16}, 32);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].lo, 1);
  EXPECT_EQ(buckets[0].hi, 3);
  EXPECT_EQ(buckets[1].lo, 4);
  EXPECT_EQ(buckets[1].hi, 15);
  EXPECT_EQ(buckets[2].lo, 16);
  EXPECT_EQ(buckets[2].hi, 32);
  EXPECT_EQ(bucket_for(buckets, 3), 0u);
  EXPECT_EQ(bucket_for(buckets, 4), 1u);
  EXPECT_EQ(bucket_for(buckets, 32), 2u);
  EXPECT_EQ(buckets[1].rep(), 4);
}

TEST(BatchBuckets, DropsOutOfRangeAndDuplicateBoundaries) {
  const auto buckets = make_batch_buckets({0, 1, 4, 4, 99}, 8);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[1].lo, 4);
}

TEST(BatchBuckets, TruncatesToMaxBucketsKeepingSmallest) {
  const auto buckets = make_batch_buckets({2, 3, 4, 5, 6}, 32, 3);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[1].lo, 2);
  EXPECT_EQ(buckets[2].lo, 3);
  EXPECT_EQ(buckets[2].hi, 32);
}

TEST(BatchBuckets, BucketForRejectsBadBatch) {
  const auto buckets = make_batch_buckets({}, 8);
  EXPECT_THROW(bucket_for(buckets, 0), Error);
  // Beyond the table clamps to the last bucket (the registry range-checks
  // the batch itself).
  EXPECT_EQ(bucket_for(buckets, 9), 0u);
}

// ---------------------------------------------------------------------------
// Coalescing numerics: batched execution must be bit-identical to singles.

// Runs `name` (tiny) at batch 1 x B and at batch B on an all-CPU plan and
// compares every output byte. Placement does not affect numerics, so the
// all-CPU plan keeps the sweep cheap enough to cover the whole zoo.
void expect_batching_bit_identical(const std::string& name, int64_t batch) {
  SCOPED_TRACE(name);
  Rng rng(7);
  Graph g1 = models::build_by_name_batched(name, 1, /*tiny=*/true);
  Graph gb = models::build_by_name_batched(name, batch, /*tiny=*/true);

  DevicePair devices = make_default_device_pair(42);
  const CompileOptions copts;
  Partition p1 = partition_phased(g1);
  Partition pb = partition_phased(gb);
  ASSERT_EQ(p1.subgraphs.size(), pb.subgraphs.size())
      << "factory(" << batch << ") must partition like factory(1)";
  const Placement cpu(p1.subgraphs.size(), DeviceKind::kCpu);
  const ExecutionPlan plan1 =
      ExecutionPlan::build(g1, std::move(p1), cpu, devices, copts);
  const ExecutionPlan planb =
      ExecutionPlan::build(gb, std::move(pb), cpu, devices, copts);
  SimExecutor executor(devices);

  std::vector<std::map<NodeId, Tensor>> feeds;
  std::vector<ExecutionResult> singles;
  for (int64_t i = 0; i < batch; ++i) {
    feeds.push_back(models::make_random_feeds(g1, rng));
    singles.push_back(executor.run(plan1, feeds.back()));
  }
  std::vector<const std::map<NodeId, Tensor>*> ptrs;
  for (const auto& f : feeds) ptrs.push_back(&f);
  const ExecutionResult batched =
      executor.run(planb, serve::stack_feeds(ptrs));
  const auto rows =
      serve::split_outputs(batched.outputs, static_cast<size_t>(batch));

  ASSERT_EQ(rows.size(), static_cast<size_t>(batch));
  for (int64_t i = 0; i < batch; ++i) {
    ASSERT_EQ(rows[i].size(), singles[i].outputs.size());
    for (size_t o = 0; o < rows[i].size(); ++o) {
      ASSERT_EQ(rows[i][o].shape(), singles[i].outputs[o].shape());
      EXPECT_EQ(std::memcmp(rows[i][o].raw_data(),
                            singles[i].outputs[o].raw_data(),
                            rows[i][o].byte_size()),
                0)
          << name << " output " << o << " row " << i
          << " differs between batched and single execution";
    }
  }
}

TEST(FleetBatching, BitIdenticalAcrossTheZoo) {
  for (const std::string& name : models::zoo_model_names()) {
    expect_batching_bit_identical(name, 3);
  }
}

TEST(FleetBatching, StackFeedsRejectsMismatchedInputSets) {
  Graph g = models::build_by_name_batched("wide-deep", 1, /*tiny=*/true);
  Rng rng(3);
  auto a = models::make_random_feeds(g, rng);
  auto b = a;
  b.erase(b.begin());
  std::vector<const std::map<NodeId, Tensor>*> ptrs{&a, &b};
  EXPECT_THROW(serve::stack_feeds(ptrs), Error);
}

TEST(FleetBatching, SplitOutputsRejectsIndivisibleRows) {
  std::vector<Tensor> outputs;
  outputs.push_back(Tensor::zeros(Shape({3, 2})));
  EXPECT_THROW(serve::split_outputs(outputs, 2), Error);
}

// ---------------------------------------------------------------------------
// FleetQueue: WFQ across tenants, EDF within, coalescing, shedding.

FleetRequest fr(uint64_t id, int tenant, int model, double arrival,
                double deadline = 0.0) {
  FleetRequest r;
  r.id = id;
  r.tenant = tenant;
  r.model = model;
  r.arrival_s = arrival;
  r.deadline_s = deadline;
  return r;
}

TEST(FleetQueue, RejectsWhenFull) {
  FleetQueue q({TenantClass{}}, 2);
  EXPECT_TRUE(q.push(fr(1, 0, 0, 0.0)));
  EXPECT_TRUE(q.push(fr(2, 0, 0, 0.0)));
  EXPECT_FALSE(q.push(fr(3, 0, 0, 0.0)));
  EXPECT_EQ(q.size(), 2u);
}

TEST(FleetQueue, EdfWithinTenant) {
  FleetQueue q({TenantClass{}}, 8);
  ASSERT_TRUE(q.push(fr(1, 0, 0, 0.0, /*deadline=*/9.0)));
  ASSERT_TRUE(q.push(fr(2, 0, 0, 0.0, /*deadline=*/5.0)));
  ASSERT_TRUE(q.push(fr(3, 0, 0, 0.0)));  // no deadline: after deadlined
  const PickResult picked = q.pick(0.0, 1);
  ASSERT_EQ(picked.batch.size(), 1u);
  EXPECT_EQ(picked.batch[0].id, 2u);
}

TEST(FleetQueue, WeightedFairShareUnderContention) {
  // gold weight 2, bronze weight 1, same model, continuous backlog: gold
  // should be served twice as often.
  std::vector<TenantClass> tenants(2);
  tenants[0] = {"gold", 2.0, 0.0};
  tenants[1] = {"bronze", 1.0, 0.0};
  FleetQueue q(tenants, 256);
  uint64_t id = 1;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(q.push(fr(id++, 0, 0, 0.0)));
    ASSERT_TRUE(q.push(fr(id++, 1, 0, 0.0)));
  }
  int served[2] = {0, 0};
  for (int round = 0; round < 90; ++round) {
    const PickResult picked = q.pick(0.0, 1);
    ASSERT_EQ(picked.batch.size(), 1u);
    const FleetRequest& r = picked.batch[0];
    ++served[r.tenant];
    q.charge(r.tenant, 1.0);  // unit service
  }
  EXPECT_EQ(served[0], 60);
  EXPECT_EQ(served[1], 30);
}

TEST(FleetQueue, IdleTenantBanksNoCredit) {
  // Tenant 1 sleeps while tenant 0 is served; on waking it snaps to the
  // current virtual time instead of replaying the backlog it never had.
  std::vector<TenantClass> tenants(2);
  tenants[0] = {"a", 1.0, 0.0};
  tenants[1] = {"b", 1.0, 0.0};
  FleetQueue q(tenants, 64);
  uint64_t id = 1;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.push(fr(id++, 0, 0, 0.0)));
  for (int i = 0; i < 10; ++i) {
    const PickResult picked = q.pick(0.0, 1);
    ASSERT_EQ(picked.batch.size(), 1u);
    q.charge(0, 1.0);
  }
  // b wakes up: it must not monopolize for 10 picks.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(q.push(fr(id++, 0, 0, 0.0)));
    ASSERT_TRUE(q.push(fr(id++, 1, 0, 0.0)));
  }
  int first_two[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    const PickResult picked = q.pick(0.0, 1);
    ASSERT_EQ(picked.batch.size(), 1u);
    ++first_two[picked.batch[0].tenant];
    q.charge(picked.batch[0].tenant, 1.0);
  }
  EXPECT_EQ(first_two[0], 1);
  EXPECT_EQ(first_two[1], 1);
}

TEST(FleetQueue, CoalescesSameModelAcrossTenants) {
  std::vector<TenantClass> tenants(2);
  tenants[0] = {"a", 1.0, 0.0};
  tenants[1] = {"b", 1.0, 0.0};
  FleetQueue q(tenants, 64);
  ASSERT_TRUE(q.push(fr(1, 0, /*model=*/7, 0.0)));
  ASSERT_TRUE(q.push(fr(2, 1, /*model=*/7, 0.0)));
  ASSERT_TRUE(q.push(fr(3, 0, /*model=*/9, 0.0)));  // different model stays
  const PickResult picked = q.pick(0.0, 8);
  ASSERT_EQ(picked.batch.size(), 2u);
  EXPECT_EQ(picked.batch[0].model, 7);
  EXPECT_EQ(picked.batch[1].model, 7);
  EXPECT_EQ(q.size(), 1u);
  const PickResult rest = q.pick(0.0, 8);
  ASSERT_EQ(rest.batch.size(), 1u);
  EXPECT_EQ(rest.batch[0].model, 9);
}

TEST(FleetQueue, CoalescingRespectsMaxBatch) {
  FleetQueue q({TenantClass{}}, 64);
  for (uint64_t i = 1; i <= 10; ++i) ASSERT_TRUE(q.push(fr(i, 0, 0, 0.0)));
  const PickResult picked = q.pick(0.0, 4);
  EXPECT_EQ(picked.batch.size(), 4u);
  EXPECT_EQ(q.size(), 6u);
}

TEST(FleetQueue, ShedsExpiredRequests) {
  FleetQueue q({TenantClass{}}, 64);
  ASSERT_TRUE(q.push(fr(1, 0, 0, 0.0, /*deadline=*/1.0)));
  ASSERT_TRUE(q.push(fr(2, 0, 0, 0.0, /*deadline=*/10.0)));
  const PickResult picked = q.pick(/*now=*/5.0, 8);
  ASSERT_EQ(picked.shed.size(), 1u);
  EXPECT_EQ(picked.shed[0].id, 1u);
  ASSERT_EQ(picked.batch.size(), 1u);
  EXPECT_EQ(picked.batch[0].id, 2u);
}

TEST(FleetQueue, DeterministicAcrossRuns) {
  const auto run = [] {
    std::vector<TenantClass> tenants = serve::default_tenant_classes(3);
    FleetQueue q(tenants, 128);
    uint64_t id = 1;
    std::vector<uint64_t> order;
    for (int i = 0; i < 30; ++i) {
      EXPECT_TRUE(q.push(fr(id, static_cast<int>(id % 3),
                            static_cast<int>(id % 2), 0.01 * i)));
      ++id;
    }
    while (!q.empty()) {
      const PickResult picked = q.pick(1.0, 3);
      for (const FleetRequest& r : picked.batch) {
        order.push_back(r.id);
        q.charge(r.tenant, 0.5);
      }
    }
    return order;
  };
  const std::vector<uint64_t> a = run();
  const std::vector<uint64_t> b = run();
  EXPECT_EQ(a.size(), 30u);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// ModelRegistry: bucket plans + the PR-4 cache dedup surface (S4).

class FleetRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProfileCache::instance().close_disk();
    ProfileCache::instance().clear();
    ProfileCache::instance().reset_stats();
    ProfileCache::instance().set_enabled(true);
    CompileCache::instance().clear();
    CompileCache::instance().reset_stats();
    CompileCache::instance().set_enabled(true);
  }

  static ModelRegistryOptions tiny_options(int64_t max_batch = 4) {
    ModelRegistryOptions o;
    o.max_batch = max_batch;
    o.engine.enable_fallback = false;
    return o;
  }
};

TEST_F(FleetRegistryTest, BucketTableCoversTheRangeWithAlignedPlacements) {
  ModelRegistry registry(tiny_options(8));
  const int idx = registry.register_model(
      "wide-deep", models::zoo_batched_factory("wide-deep", /*tiny=*/true));
  serve::ResidentModel& m = registry.model(idx);
  ASSERT_FALSE(m.buckets().empty());
  EXPECT_EQ(m.buckets().front().lo, 1);
  EXPECT_EQ(m.buckets().back().hi, 8);
  for (size_t b = 0; b < m.buckets().size(); ++b) {
    EXPECT_EQ(m.bucket_placement(b).size(),
              m.engine().partition().subgraphs.size());
  }
  for (int64_t batch = 1; batch <= 8; ++batch) {
    EXPECT_LT(m.bucket_of(batch), m.buckets().size());
  }
}

TEST_F(FleetRegistryTest, PlanSnapshotsAreSharedAcrossLookups) {
  ModelRegistry registry(tiny_options());
  const int idx = registry.register_model(
      "wide-deep", models::zoo_batched_factory("wide-deep", /*tiny=*/true));
  serve::ResidentModel& m = registry.model(idx);
  const auto first = m.plan_for_batch(2);
  const auto second = m.plan_for_batch(2);
  EXPECT_EQ(first.get(), second.get()) << "plan cache must share snapshots";
  EXPECT_THROW(m.plan_for_batch(0), Error);
  EXPECT_THROW(m.plan_for_batch(99), Error);
  EXPECT_GT(m.modeled_service_s(2), 0.0);
  EXPECT_GT(m.baseline_service_s(2), 0.0);
}

TEST_F(FleetRegistryTest, StructurallyIdenticalTwinIsFullyCacheWarm) {
  // The S4 gate: a second registration of a structurally identical model
  // must compile nothing new — 100% warm compile-cache hits and zero new
  // profiler compiles (the profile.compiles counter stands still).
  ModelRegistry registry(tiny_options());
  registry.register_model(
      "wide-deep-a", models::zoo_batched_factory("wide-deep", /*tiny=*/true));
  const uint64_t compiles_before =
      telemetry::counter("profile.compiles").value();

  registry.register_model(
      "wide-deep-b", models::zoo_batched_factory("wide-deep", /*tiny=*/true));

  const uint64_t compiles_after =
      telemetry::counter("profile.compiles").value();
  EXPECT_EQ(compiles_after, compiles_before)
      << "second registration must not re-compile for profiling";

  const serve::RegistryCacheStats& stats = registry.cache_stats();
  ASSERT_EQ(stats.registrations.size(), 2u);
  const serve::RegistrationCacheDelta& twin = stats.registrations[1];
  EXPECT_EQ(twin.model, "wide-deep-b");
  EXPECT_EQ(twin.compile_misses, 0u)
      << "twin registration compiled something the cache should have had";
  EXPECT_GT(twin.compile_hits, 0u);
  EXPECT_DOUBLE_EQ(twin.compile_hit_rate(), 1.0);
  EXPECT_EQ(twin.profile_misses, 0u);
  EXPECT_GT(twin.profile_hits, 0u);
  EXPECT_FALSE(stats.to_string().empty());
}

TEST_F(FleetRegistryTest, RejectsDuplicateNamesAndUnknownIndices) {
  ModelRegistry registry(tiny_options());
  registry.register_model(
      "wide-deep", models::zoo_batched_factory("wide-deep", /*tiny=*/true));
  EXPECT_THROW(registry.register_model(
                   "wide-deep",
                   models::zoo_batched_factory("wide-deep", /*tiny=*/true)),
               Error);
  EXPECT_EQ(registry.index_of("nope"), -1);
  EXPECT_THROW(registry.model(5), Error);
}

// ---------------------------------------------------------------------------
// Virtual-time fleet simulator

TEST(FleetSim, ConservationPerTenant) {
  serve::FleetSimConfig config;
  config.workers = 1;
  config.queue_capacity = 4;
  config.tenants = serve::default_tenant_classes(2, /*deadline_s=*/0.05);
  config.max_batch = 2;
  std::vector<serve::FleetSimRequest> requests;
  for (int i = 0; i < 40; ++i) {
    serve::FleetSimRequest r;
    r.arrival_s = 0.001 * i;
    r.tenant = i % 2;
    r.model = 0;
    requests.push_back(r);
  }
  const serve::FleetSimStats stats = serve::simulate_fleet(
      requests, [](int, int64_t) { return 0.02; }, config);
  uint64_t offered = 0;
  for (const serve::FleetTenantStats& t : stats.tenants) {
    EXPECT_EQ(t.admission.offered, t.admission.completed + t.admission.shed +
                                       t.admission.rejected)
        << "conservation violated for tenant " << t.name;
    offered += t.admission.offered;
  }
  EXPECT_EQ(offered, 40u);
  EXPECT_EQ(stats.total.offered, 40u);
}

TEST(FleetSim, BurstsCoalesceIntoBatches) {
  serve::FleetSimConfig config;
  config.workers = 1;
  config.queue_capacity = 64;
  config.max_batch = 8;
  std::vector<serve::FleetSimRequest> requests;
  for (int i = 0; i < 32; ++i) {
    serve::FleetSimRequest r;
    r.arrival_s = 0.0;  // one burst
    r.tenant = 0;
    r.model = 0;
    requests.push_back(r);
  }
  const serve::FleetSimStats stats = serve::simulate_fleet(
      requests, [](int, int64_t b) { return 0.01 + 0.001 * double(b); },
      config);
  EXPECT_EQ(stats.total.completed, 32u);
  EXPECT_EQ(stats.batches, 4u) << "a burst of 32 at max_batch 8 is 4 batches";
  EXPECT_DOUBLE_EQ(stats.mean_batch, 8.0);
  EXPECT_EQ(stats.coalesced_requests, 32u);
}

TEST(FleetSim, BatchingBeatsSinglesOnThroughput) {
  // Sub-linear batch service (the whole point of coalescing): the batched
  // fleet finishes the same open-loop burst strictly faster.
  std::vector<serve::FleetSimRequest> requests;
  for (int i = 0; i < 64; ++i) {
    serve::FleetSimRequest r;
    r.arrival_s = 0.0001 * i;
    requests.push_back(r);
  }
  const auto service = [](int, int64_t b) {
    return 0.01 + 0.002 * static_cast<double>(b);
  };
  serve::FleetSimConfig batched;
  batched.queue_capacity = 128;
  batched.max_batch = 8;
  serve::FleetSimConfig singles = batched;
  singles.max_batch = 1;
  const auto with = serve::simulate_fleet(requests, service, batched);
  const auto without = serve::simulate_fleet(requests, service, singles);
  EXPECT_EQ(with.total.completed, 64u);
  EXPECT_EQ(without.total.completed, 64u);
  EXPECT_GT(with.throughput_qps, without.throughput_qps);
  EXPECT_LT(with.makespan_s, without.makespan_s);
}

TEST(FleetSim, WeightsShapeThroughputUnderOverload) {
  // Deadlined overload: the heavier tenant completes more and sheds less.
  serve::FleetSimConfig config;
  config.workers = 1;
  config.queue_capacity = 256;
  config.tenants = serve::default_tenant_classes(2, /*deadline_s=*/0.2);
  config.max_batch = 1;
  std::vector<serve::FleetSimRequest> requests;
  for (int i = 0; i < 200; ++i) {
    serve::FleetSimRequest r;
    r.arrival_s = 0.0005 * i;
    r.tenant = i % 2;
    requests.push_back(r);
  }
  const auto stats = serve::simulate_fleet(
      requests, [](int, int64_t) { return 0.01; }, config);
  EXPECT_GT(stats.tenants[0].admission.completed,
            stats.tenants[1].admission.completed)
      << "gold (weight 4) must outrun silver (weight 2) under overload";
}

// ---------------------------------------------------------------------------
// FleetServer (real threads)

class FleetServerTest : public FleetRegistryTest {};

TEST_F(FleetServerTest, CoalescedResponsesAreBitIdenticalToSingles) {
  ModelRegistry registry(tiny_options());
  const int idx = registry.register_model(
      "wide-deep", models::zoo_batched_factory("wide-deep", /*tiny=*/true));
  serve::ResidentModel& m = registry.model(idx);

  Rng rng(11);
  const Graph& g = m.engine().model();
  std::vector<std::map<NodeId, Tensor>> feeds;
  for (int i = 0; i < 3; ++i) feeds.push_back(models::make_random_feeds(g, rng));

  // Reference: each request alone through the batch-1 plan.
  DevicePair devices = make_default_device_pair(42);
  SimExecutor executor(devices);
  const auto plan1 = m.plan_for_batch(1);
  std::vector<ExecutionResult> singles;
  for (const auto& f : feeds) singles.push_back(executor.run(*plan1, f));

  serve::FleetOptions options;
  options.workers = 1;
  options.max_batch = 4;
  options.start_paused = true;  // all three queue before the single pickup
  serve::FleetServer server(registry, options);
  std::vector<std::future<serve::FleetResponse>> futures;
  for (const auto& f : feeds) futures.push_back(server.submit(idx, 0, f));
  server.resume();
  for (size_t i = 0; i < futures.size(); ++i) {
    const serve::FleetResponse r = futures[i].get();
    ASSERT_EQ(r.status, serve::RequestStatus::kOk);
    EXPECT_EQ(r.batch, 3) << "paused submits must coalesce into one batch";
    ASSERT_EQ(r.outputs.size(), singles[i].outputs.size());
    for (size_t o = 0; o < r.outputs.size(); ++o) {
      EXPECT_EQ(std::memcmp(r.outputs[o].raw_data(),
                            singles[i].outputs[o].raw_data(),
                            r.outputs[o].byte_size()),
                0)
          << "coalesced row " << i << " output " << o << " diverged";
    }
  }
  server.shutdown();
  const serve::FleetServerStats stats = server.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.coalesced_requests, 3u);
  EXPECT_EQ(stats.batch_histogram.at(3), 1u);
}

TEST_F(FleetServerTest, PerTenantConservationAndRejects) {
  ModelRegistry registry(tiny_options());
  const int idx = registry.register_model(
      "wide-deep", models::zoo_batched_factory("wide-deep", /*tiny=*/true));

  serve::FleetOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  options.tenants = serve::default_tenant_classes(2);
  options.start_paused = true;  // deterministic rejects: nothing drains
  serve::FleetServer server(registry, options);

  Rng rng(5);
  const auto feeds =
      models::make_random_feeds(registry.model(idx).engine().model(), rng);
  std::vector<std::future<serve::FleetResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(server.submit(idx, i % 2, feeds));
  }
  // Capacity 4: the last two must have been rejected immediately.
  int rejected = 0;
  for (int i = 4; i < 6; ++i) {
    if (futures[i].get().status == serve::RequestStatus::kRejected) ++rejected;
  }
  EXPECT_EQ(rejected, 2);
  server.resume();
  server.drain();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(futures[i].get().status, serve::RequestStatus::kOk);
  }
  const serve::FleetServerStats stats = server.stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  uint64_t offered = 0;
  for (const serve::FleetTenantStats& t : stats.tenants) {
    EXPECT_EQ(t.admission.offered, t.admission.completed + t.admission.shed +
                                       t.admission.rejected)
        << "conservation violated for tenant " << t.name;
    offered += t.admission.offered;
  }
  EXPECT_EQ(offered, 6u);
  EXPECT_EQ(stats.total.rejected, 2u);
  EXPECT_EQ(stats.total.completed, 4u);
}

TEST_F(FleetServerTest, ServesMultipleResidentModels) {
  ModelRegistry registry(tiny_options());
  const int wd = registry.register_model(
      "wide-deep", models::zoo_batched_factory("wide-deep", /*tiny=*/true));
  const int sm = registry.register_model(
      "siamese", models::zoo_batched_factory("siamese", /*tiny=*/true));

  serve::FleetOptions options;
  options.workers = 2;
  serve::FleetServer server(registry, options);
  Rng rng(9);
  const auto wd_feeds =
      models::make_random_feeds(registry.model(wd).engine().model(), rng);
  const auto sm_feeds =
      models::make_random_feeds(registry.model(sm).engine().model(), rng);
  std::vector<std::future<serve::FleetResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(server.submit(wd, 0, wd_feeds));
    futures.push_back(server.submit(sm, 0, sm_feeds));
  }
  server.drain();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, serve::RequestStatus::kOk);
  }
  EXPECT_EQ(server.stats().total.completed, 8u);
}

TEST_F(FleetServerTest, ExpiredDeadlinesAreShedNotExecuted) {
  ModelRegistry registry(tiny_options());
  const int idx = registry.register_model(
      "wide-deep", models::zoo_batched_factory("wide-deep", /*tiny=*/true));
  serve::FleetOptions options;
  options.workers = 1;
  options.start_paused = true;
  serve::FleetServer server(registry, options);
  Rng rng(5);
  const auto feeds =
      models::make_random_feeds(registry.model(idx).engine().model(), rng);
  auto doomed = server.submit(idx, 0, feeds, /*deadline_s=*/1e-4);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.resume();
  const serve::FleetResponse r = doomed.get();
  EXPECT_EQ(r.status, serve::RequestStatus::kShed);
  EXPECT_TRUE(r.outputs.empty());
  server.drain();
  EXPECT_EQ(server.stats().total.shed, 1u);
}

}  // namespace
}  // namespace duet
