// End-to-end smoke test: the full DUET pipeline (partition -> profile ->
// schedule -> execute) on the default Wide-and-Deep model, checking the
// paper's headline behaviours hold in the calibrated simulation.

#include <gtest/gtest.h>

#include "duet/baseline.hpp"
#include "duet/engine.hpp"
#include "duet/report.hpp"
#include "models/model_zoo.hpp"

namespace duet {
namespace {

TEST(Smoke, WideDeepEndToEnd) {
  Graph model = models::build_wide_deep();
  DuetEngine engine(std::move(model));

  const DuetReport& report = engine.report();
  // W&D has parallel branches: DUET must not fall back.
  EXPECT_FALSE(report.fell_back) << report.to_string(engine.model(),
                                                     engine.partition());

  // Headline result: faster than both single-device baselines.
  EXPECT_LT(report.est_hetero_s, report.est_single_gpu_s);
  EXPECT_LT(report.est_hetero_s, report.est_single_cpu_s);

  // Paper band: 1.5-2.3x over TVM-GPU (we accept a wider shape band).
  const double speedup_gpu = report.est_single_gpu_s / report.est_hetero_s;
  EXPECT_GT(speedup_gpu, 1.3);
  EXPECT_LT(speedup_gpu, 4.0);

  // Numeric execution matches the reference interpreter.
  Rng rng(7);
  const auto feeds = models::make_random_feeds(engine.model(), rng);
  ExecutionResult result = engine.infer(feeds);
  const std::vector<Tensor> expect = evaluate_graph(engine.model(), feeds);
  ASSERT_EQ(result.outputs.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_TRUE(Tensor::allclose(result.outputs[i], expect[i]))
        << "output " << i << " diverged";
  }
  EXPECT_GT(result.latency_s, 0.0);
}

}  // namespace
}  // namespace duet
