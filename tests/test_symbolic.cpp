// Tests for the symbolic shape & cost abstract interpretation
// (src/analysis/symbolic): SymExpr algebra, the central bit-identity
// property (symbolic inference + cost, specialized at a concrete binding,
// reproduces infer_node_type / cost_model exactly across the model zoo and
// randomized lane graphs), the batch-crossover certification, the new lint
// rules' corruption triggers, and the Shape::numel overflow guard.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analysis/lint/lint.hpp"
#include "analysis/lint/rules.hpp"
#include "analysis/symbolic/crossover.hpp"
#include "analysis/symbolic/sym_cost.hpp"
#include "analysis/symbolic/sym_expr.hpp"
#include "analysis/symbolic/sym_shape_inference.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "compiler/cost_model.hpp"
#include "compiler/pass.hpp"
#include "device/calibration.hpp"
#include "graph/builder.hpp"
#include "graph/shape_inference.hpp"
#include "models/model_zoo.hpp"
#include "partition/partitioner.hpp"
#include "runtime/plan.hpp"
#include "telemetry/chrome_trace.hpp"

namespace duet {
namespace {

using symbolic::SymBindings;
using symbolic::SymDomain;
using symbolic::SymExpr;
using symbolic::SymShape;

bool has_rule(const VerifyResult& r, const std::string& rule) {
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == rule) return true;
  }
  return false;
}

// --- SymExpr algebra --------------------------------------------------------

TEST(SymExpr, CanonicalFormAndEquality) {
  const SymExpr b = SymExpr::symbol("B");
  const SymExpr t = SymExpr::symbol("T");
  EXPECT_EQ(b * t, t * b);              // commutes into one canonical monomial
  EXPECT_EQ(b + b, SymExpr(2) * b);     // like terms merge
  EXPECT_TRUE((b - b).is_zero());       // zero coefficients vanish
  EXPECT_TRUE(SymExpr(7).is_constant());
  EXPECT_EQ(SymExpr(7).constant_value(), 7);
  EXPECT_FALSE(b.is_constant());
  EXPECT_EQ((SymExpr(2) * b * t + SymExpr(4) * b + SymExpr(128)).to_string(),
            "2*B*T + 4*B + 128");
}

TEST(SymExpr, ArithmeticIdentities) {
  const SymExpr b = SymExpr::symbol("B");
  EXPECT_EQ((b + 1) * (b - 1), b * b - 1);
  EXPECT_EQ((b + 3) - (b + 3), SymExpr(0));
  SymExpr acc;
  acc += b;
  acc += 5;
  acc *= SymExpr(2);
  EXPECT_EQ(acc, SymExpr(2) * b + 10);
}

TEST(SymExpr, ExactDivision) {
  const SymExpr b = SymExpr::symbol("B");
  const SymExpr t = SymExpr::symbol("T");
  auto q = (SymExpr(6) * b * t).divided_by(SymExpr(3) * t);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, SymExpr(2) * b);
  q = (b * b + b).divided_by(b);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, b + 1);
  EXPECT_FALSE((b + 1).divided_by(SymExpr(2)).has_value());  // 1/2 not integer
  EXPECT_FALSE(b.divided_by(t).has_value());                 // B/T not polynomial
}

TEST(SymExpr, EvalIsExactAndThrowsOnUnboundSymbol) {
  const SymExpr b = SymExpr::symbol("B");
  const SymExpr t = SymExpr::symbol("T");
  const SymExpr e = SymExpr(2) * b * t + SymExpr(4) * b + 128;
  EXPECT_EQ(e.eval({{"B", 3}, {"T", 5}}), 170);
  EXPECT_THROW(e.eval({{"B", 3}}), Error);
}

TEST(SymExpr, OverflowThrowsInsteadOfWrapping) {
  const SymExpr b = SymExpr::symbol("B");
  const int64_t big = std::numeric_limits<int64_t>::max();
  EXPECT_THROW(SymExpr(big) * SymExpr(2), Error);      // coefficient arithmetic
  EXPECT_THROW((b * b).eval({{"B", int64_t{1} << 32}}), Error);  // evaluation
}

TEST(SymExpr, BoundsAndDegree) {
  const SymExpr b = SymExpr::symbol("B");
  const SymDomain domain = {{"B", {1, 64}}};
  const SymExpr::Interval iv = (SymExpr(4) * b + 8).bounds(domain);
  EXPECT_TRUE(iv.bounded);
  EXPECT_EQ(iv.lo, 12);
  EXPECT_EQ(iv.hi, 264);
  EXPECT_FALSE(b.bounds({}).bounded);  // no declared range
  EXPECT_EQ((SymExpr(2) * b * b + b).degree("B"), 2);
  EXPECT_EQ(b.degree("T"), 0);
  EXPECT_EQ((b * SymExpr::symbol("T")).symbols(),
            (std::vector<std::string>{"B", "T"}));
}

TEST(SymExpr, ProvableComparisons) {
  const SymExpr b = SymExpr::symbol("B");
  const SymDomain domain = {{"B", {1, 64}}};
  EXPECT_TRUE(symbolic::provably_ge(SymExpr(64) * b, b, domain));
  EXPECT_TRUE(symbolic::provably_gt(b + 1, b, domain));
  EXPECT_FALSE(symbolic::provably_gt(b, SymExpr(32), domain));  // flips at 33
  EXPECT_FALSE(symbolic::provably_ge(b, SymExpr(1), {}));       // unbounded
}

TEST(SymShape, LiftAndEvalRoundTrip) {
  const Shape concrete{2, 256};
  const SymShape lifted(concrete);
  EXPECT_TRUE(lifted.is_constant());
  EXPECT_EQ(lifted.at({}), concrete);

  const SymShape batched =
      lifted.with_dim(0, SymExpr::symbol("B"));
  EXPECT_EQ(batched.to_string(), "[B, 256]");
  EXPECT_EQ(batched.at({{"B", 7}}), (Shape{7, 256}));
  EXPECT_EQ(batched.numel(), SymExpr(256) * SymExpr::symbol("B"));
}

// --- Shape::numel overflow guard (satellite) ---------------------------------

TEST(ShapeNumel, AdversarialDimsThrowInsteadOfWrapping) {
  // 2^32 * 2^32 == 2^64 wraps int64 to 0 without the guard — a zero-byte
  // allocation for an enormous tensor.
  EXPECT_THROW((Shape{int64_t{1} << 32, int64_t{1} << 32}).numel(), Error);
  EXPECT_THROW(
      (Shape{std::numeric_limits<int64_t>::max(), 2}).numel(), Error);
  // Wrapping to a positive value is just as dangerous as wrapping to zero.
  EXPECT_THROW(
      (Shape{int64_t{1} << 62, 5}).numel(), Error);
}

TEST(ShapeNumel, LargeButRepresentableProductsSucceed) {
  EXPECT_EQ((Shape{int64_t{1} << 20, int64_t{1} << 20}).numel(),
            int64_t{1} << 40);
  EXPECT_EQ((Shape{}).numel(), 1);
  EXPECT_EQ((Shape{0, int64_t{1} << 62}).numel(), 0);
}

// --- bit-identity property: model zoo ----------------------------------------

// Asserts that specializing the symbolic shapes/costs of `g` at `bindings`
// reproduces the concrete inference and cost model bit-for-bit against the
// recorded shapes and quantities of `concrete` (== g for the native binding,
// or a structural twin built at another batch size).
void expect_specialization_matches(const Graph& g,
                                   const symbolic::SymbolicShapes& sym,
                                   const SymBindings& bindings,
                                   const Graph& concrete,
                                   const std::string& context) {
  ASSERT_EQ(g.num_nodes(), concrete.num_nodes()) << context;
  const CompileOptions opts = CompileOptions::compiler_defaults();
  const std::vector<DeviceCostParams> devices = {xeon_gold_6152(), titan_v()};
  for (const Node& n : concrete.nodes()) {
    const size_t id = static_cast<size_t>(n.id);
    EXPECT_EQ(sym.shapes[id].at(bindings), n.out_shape)
        << context << " node " << n.id << " (" << op_name(n.op) << "): "
        << sym.shapes[id].to_string();
    EXPECT_EQ(sym.dtypes[id], n.out_dtype) << context << " node " << n.id;

    const NodeCostQuantities ref = node_cost_quantities(concrete, n);
    const NodeCostQuantities got = symbolic::specialize(
        symbolic::sym_node_cost(g, g.node(n.id), sym), bindings, n.op);
    EXPECT_EQ(got.metadata, ref.metadata) << context << " node " << n.id;
    EXPECT_EQ(got.flops, ref.flops) << context << " node " << n.id;
    EXPECT_EQ(got.read_bytes, ref.read_bytes) << context << " node " << n.id;
    EXPECT_EQ(got.written_bytes, ref.written_bytes)
        << context << " node " << n.id;
    EXPECT_EQ(got.launches, ref.launches) << context << " node " << n.id;
    EXPECT_EQ(got.batch, ref.batch) << context << " node " << n.id;
    EXPECT_EQ(got.layout_tagged, ref.layout_tagged)
        << context << " node " << n.id;
    for (const DeviceCostParams& dev : devices) {
      EXPECT_EQ(node_time_from_quantities(got, dev, opts, &n),
                node_time_seconds(concrete, n, dev, opts))
          << context << " node " << n.id << " on " << dev.name;
    }
  }
}

TEST(SymbolicZoo, NativeSpecializationIsBitIdentical) {
  for (const std::string& name : models::zoo_model_names()) {
    const Graph g = models::build_by_name(name);
    const symbolic::SymbolicShapes sym = symbolic::infer_symbolic(g);
    EXPECT_EQ(sym.diagnostics.error_count(), 0u)
        << name << "\n" << sym.diagnostics.to_string();

    const std::vector<NodeId> inputs = g.input_ids();
    ASSERT_FALSE(inputs.empty()) << name;
    const int64_t native = g.node(inputs[0]).out_shape.dim(0);
    for (NodeId in : inputs) {
      ASSERT_EQ(g.node(in).out_shape.dim(0), native)
          << name << ": inputs disagree on the batch dim";
    }
    expect_specialization_matches(g, sym, {{"B", native}}, g, name);
  }
}

TEST(SymbolicZoo, OnlyBatchFoldingModelsCarryDiagnostics) {
  // mtdnn and dlrm hard-code the batch inside reshape targets (and mtdnn
  // adds a [1, ...] constant to a batched tensor); the contract pass must
  // flag exactly those, at warning severity, and nothing else.
  const std::set<std::string> expected_warnings = {"mtdnn", "dlrm"};
  for (const std::string& name : models::zoo_model_names()) {
    const symbolic::SymbolicShapes sym =
        symbolic::infer_symbolic(models::build_by_name(name));
    EXPECT_EQ(sym.diagnostics.error_count(), 0u) << name;
    if (expected_warnings.count(name)) {
      EXPECT_TRUE(sym.has("symbolic-shape-contract"))
          << name << " should report its batch-folding reshapes";
    } else {
      EXPECT_TRUE(sym.clean())
          << name << "\n" << sym.diagnostics.to_string();
    }
  }
}

// --- bit-identity property: randomized lane graphs ----------------------------

// A trimmed twin of tests/test_fuzz.cpp's random_graph with the batch size a
// parameter that does NOT perturb the rng stream: two calls with the same
// seed build structurally identical graphs at different batch sizes, giving
// the symbolic pass a concrete twin to check non-native specializations
// against.
Graph lane_graph(uint64_t seed, int64_t batch) {
  Rng rng(seed);
  GraphBuilder b("lanes_" + std::to_string(seed), seed * 13 + 1);

  std::vector<NodeId> live;
  const int num_inputs = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < num_inputs; ++i) {
    const int64_t features = 4 << rng.uniform_int(0, 3);  // 4..32
    live.push_back(b.input(Shape{batch, features}));
  }

  const int steps = static_cast<int>(rng.uniform_int(6, 20));
  for (int s = 0; s < steps; ++s) {
    const int64_t choice = rng.uniform_int(0, 8);
    const size_t pick = static_cast<size_t>(
        rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1));
    const NodeId x = live[pick];
    NodeId produced = kInvalidNode;
    switch (choice) {
      case 0:
        produced = b.relu(x);
        break;
      case 1:
        produced = b.sigmoid(x);
        break;
      case 2:
        produced = b.tanh(x);
        break;
      case 3:
      case 4:
        produced = b.dense(x, 4 << rng.uniform_int(0, 3));
        break;
      case 5: {  // merge two equal-shaped values with add (or skip)
        NodeId other = kInvalidNode;
        for (NodeId cand : live) {
          if (cand != x &&
              b.graph().node(cand).out_shape == b.graph().node(x).out_shape) {
            other = cand;
            break;
          }
        }
        produced = other != kInvalidNode ? b.add(x, other) : b.gelu(x);
        break;
      }
      case 6: {  // concat two lanes along features
        const size_t pick2 = static_cast<size_t>(
            rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1));
        produced = b.concat({x, live[pick2]}, 1);
        break;
      }
      case 7:
        produced = b.layer_norm(x);
        break;
      default:
        produced = b.dense(x, 8, "relu");
        break;
    }
    if (!rng.coin(0.35)) live.erase(live.begin() + static_cast<long>(pick));
    live.push_back(produced);
  }

  std::vector<NodeId> outputs;
  for (NodeId id : live) {
    if (!b.graph().node(id).is_input()) outputs.push_back(id);
    if (outputs.size() == 4) break;
  }
  return b.finish(std::move(outputs));
}

TEST(SymbolicFuzz, SpecializationMatchesTwinGraphs) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = lane_graph(seed, /*batch=*/2);
    const symbolic::SymbolicShapes sym = symbolic::infer_symbolic(g);
    EXPECT_TRUE(sym.clean())
        << "seed " << seed << "\n" << sym.diagnostics.to_string();

    // Native binding against the graph itself...
    expect_specialization_matches(g, sym, {{"B", 2}}, g,
                                  "seed " + std::to_string(seed) + " B=2");
    // ...and non-native bindings against freshly built structural twins.
    for (const int64_t batch : {1, 5, 33}) {
      const Graph twin = lane_graph(seed, batch);
      expect_specialization_matches(
          g, sym, {{"B", batch}}, twin,
          "seed " + std::to_string(seed) + " B=" + std::to_string(batch));
    }
  }
}

// --- inference diagnostics -----------------------------------------------------

TEST(SymbolicInference, BatchFoldingReshapeWarnsAndFallsBack) {
  GraphBuilder b("fold");
  const NodeId x = b.input(Shape{2, 8}, "x");
  const NodeId d = b.dense(x, 4);
  const NodeId r = b.reshape(d, Shape{8});  // folds the batch away
  const Graph g = b.finish({b.relu(r)});

  const symbolic::SymbolicShapes sym = symbolic::infer_symbolic(g);
  EXPECT_TRUE(sym.has("symbolic-shape-contract"))
      << sym.diagnostics.to_string();
  EXPECT_EQ(sym.diagnostics.error_count(), 0u);  // portability, not correctness
  // The fallback keeps whole-graph inference going: at the native binding
  // every shape (including downstream of the fold) still specializes exactly.
  expect_specialization_matches(g, sym, {{"B", 2}}, g, "fold");
}

TEST(SymbolicInference, MissingDomainReportsUnboundedDim) {
  GraphBuilder b("nodomain");
  const NodeId x = b.input(Shape{2, 8}, "x");
  const Graph g = b.finish({b.relu(x)});

  symbolic::SymbolicOptions options;
  options.domain = {{"T", {1, 8}}};  // non-empty, but says nothing about B
  const symbolic::SymbolicShapes sym = symbolic::infer_symbolic(g, options);
  EXPECT_TRUE(sym.has("unbounded-dim")) << sym.diagnostics.to_string();
  EXPECT_EQ(sym.diagnostics.error_count(), 0u);

  // The default domain (B in [1, 64]) keeps the same graph clean.
  EXPECT_TRUE(symbolic::infer_symbolic(g).clean());
}

// --- lint wiring -----------------------------------------------------------------

lint::LintInput input_with_subgraphs(
    const ExecutionPlan& plan, const std::vector<PlannedSubgraph>& subgraphs) {
  return lint::LintInput{
      PlanView{plan.parent(), plan.partition(), plan.placement(), subgraphs,
               plan.consumers(), plan.transfers(), plan.step_order()},
      plan.memory_plan(), nullptr, nullptr};
}

ExecutionPlan cpu_plan(const Graph& graph) {
  const Partition partition = partition_phased(graph);
  const Placement placement(partition.subgraphs.size(), DeviceKind::kCpu);
  return ExecutionPlan::build(graph, partition, placement,
                              make_default_device_pair(),
                              CompileOptions::compiler_defaults());
}

TEST(SymbolicLint, ShapeContractPassFiresThroughThePlanPipeline) {
  GraphBuilder b("fold-lint");
  const NodeId x = b.input(Shape{2, 8}, "x");
  const NodeId r = b.reshape(b.dense(x, 4), Shape{8});
  const ExecutionPlan plan = cpu_plan(b.finish({b.relu(r)}));

  const VerifyResult result =
      lint::make_symbolic_shape_pass()->run(lint::make_input(plan));
  EXPECT_TRUE(has_rule(result, "symbolic-shape-contract"))
      << result.to_string();
  EXPECT_EQ(result.error_count(), 0u);
}

TEST(SymbolicLint, TransferBlowupFiresOnEmbeddingOnlySubgraph) {
  // An embedding gather: zero flops but output bytes linear in B. Placed
  // across the link, the transfer outgrows the compute by construction.
  GraphBuilder b("emb-only");
  const NodeId idx = b.input(Shape{2, 4}, "idx", DType::kInt32);
  const ExecutionPlan plan = cpu_plan(b.finish({b.embedding(idx, 100, 16)}));

  const VerifyResult result =
      lint::make_transfer_blowup_pass()->run(lint::make_input(plan));
  EXPECT_TRUE(has_rule(result, "transfer-blowup")) << result.to_string();
  EXPECT_EQ(result.error_count(), 0u);
}

TEST(SymbolicLint, TransferBlowupStaysSilentWhenComputeKeepsPace) {
  // Dense compute grows with B exactly like its boundary bytes do.
  GraphBuilder b("dense-chain");
  const NodeId x = b.input(Shape{2, 16}, "x");
  const ExecutionPlan plan = cpu_plan(b.finish({b.relu(b.dense(x, 8))}));

  const VerifyResult result =
      lint::make_transfer_blowup_pass()->run(lint::make_input(plan));
  EXPECT_EQ(result.diagnostics().size(), 0u) << result.to_string();
}

TEST(SymbolicLint, MemoBitsetFallbackFiresPast64Subgraphs) {
  GraphBuilder b("bitset");
  const NodeId x = b.input(Shape{2, 16}, "x");
  const ExecutionPlan plan = cpu_plan(b.finish({b.relu(b.dense(x, 8))}));

  // Under the 64-subgraph cliff: silent.
  EXPECT_EQ(lint::make_memo_bitset_pass()
                ->run(lint::make_input(plan))
                .diagnostics()
                .size(),
            0u);

  // Over it: the evaluator would fall off its bitset memo — must be visible.
  std::vector<PlannedSubgraph> subs = plan.subgraphs();
  ASSERT_FALSE(subs.empty());
  while (subs.size() <= 64) subs.push_back(subs.front());
  const VerifyResult result =
      lint::make_memo_bitset_pass()->run(input_with_subgraphs(plan, subs));
  EXPECT_TRUE(has_rule(result, "memo-bitset-fallback")) << result.to_string();
  EXPECT_EQ(result.error_count(), 0u);
}

TEST(SymbolicLint, NewRulesAreCataloguedAsWarnings) {
  for (const char* rule : {"symbolic-shape-contract", "unbounded-dim",
                           "transfer-blowup", "memo-bitset-fallback"}) {
    const lint::RuleInfo* info = lint::find_rule(rule);
    ASSERT_NE(info, nullptr) << rule;
    // Batch polymorphism is a portability property; engine checked mode
    // throws on errors, and batch-monomorphic graphs still execute
    // correctly — these must never block a valid plan.
    EXPECT_EQ(info->severity, Diagnostic::Severity::kWarning) << rule;
  }
}

TEST(SymbolicLint, StandardSuiteStaysErrorFreeOnBatchFoldingModel) {
  // dlrm folds the batch in reshapes — the harshest zoo case for the
  // symbolic pass. It must surface warnings, never errors (checked-mode
  // engines construct plans for it).
  const Graph g = models::build_by_name("dlrm");
  const Graph opt =
      PassManager::standard(CompileOptions::compiler_defaults()).run(g);
  const ExecutionPlan plan = cpu_plan(opt);
  const VerifyResult result = lint::LintSuite::standard().run(plan);
  EXPECT_EQ(result.error_count(), 0u) << result.to_string();
  EXPECT_TRUE(has_rule(result, "symbolic-shape-contract"))
      << result.to_string();
}

// --- crossover certification ------------------------------------------------------

// Independent re-evaluation of the analytic model for one subgraph at one
// batch — the checker's twin of the solver's inner loop, built only from the
// public pieces (specialize + shared roofline + transfer model).
struct AnalyticTimes {
  double cpu = 0;
  double gpu = 0;
};

AnalyticTimes eval_subgraph_at(const Graph& parent, const Subgraph& sg,
                               const symbolic::SymbolicShapes& shapes,
                               const symbolic::SymSubgraphCost& totals,
                               const symbolic::CrossoverOptions& options,
                               int64_t batch) {
  AnalyticTimes t;
  const SymBindings bindings = {{options.symbol, batch}};
  for (NodeId id : sg.parent_nodes) {
    const Node& n = parent.node(id);
    const NodeCostQuantities q = symbolic::specialize(
        symbolic::sym_node_cost(parent, n, shapes), bindings, n.op);
    t.cpu += node_time_from_quantities(q, options.cpu, options.compile);
    t.gpu += node_time_from_quantities(q, options.gpu, options.compile);
  }
  const auto in_bytes =
      static_cast<uint64_t>(totals.transfer_in_bytes.eval(bindings));
  const auto out_bytes =
      static_cast<uint64_t>(totals.transfer_out_bytes.eval(bindings));
  if (in_bytes > 0) t.gpu += transfer_time_seconds(in_bytes, options.link);
  if (out_bytes > 0) t.gpu += transfer_time_seconds(out_bytes, options.link);
  return t;
}

TEST(Crossover, WideDeepHasACertifiedFiniteFlip) {
  const Graph g = models::build_by_name("wide-deep");
  const Graph opt =
      PassManager::standard(CompileOptions::compiler_defaults()).run(g);
  const Partition partition = partition_phased(opt);
  const symbolic::SymbolicShapes sym = symbolic::infer_symbolic(opt);
  ASSERT_EQ(sym.diagnostics.error_count(), 0u) << sym.diagnostics.to_string();

  const symbolic::CrossoverOptions options;
  const symbolic::CrossoverReport report =
      symbolic::analyze_crossover(opt, partition, sym, options);

  // The acceptance property: a finite batch boundary where the analytic
  // CPU-vs-GPU preference flips, inside the scanned range.
  ASSERT_TRUE(report.any_flip()) << report.to_string();
  for (const int64_t boundary : report.bucket_boundaries) {
    EXPECT_GT(boundary, report.lo);
    EXPECT_LE(boundary, report.hi);
  }
  EXPECT_TRUE(std::is_sorted(report.bucket_boundaries.begin(),
                             report.bucket_boundaries.end()));

  const auto preferred = [](double cpu, double gpu) {
    return cpu <= gpu ? DeviceKind::kCpu : DeviceKind::kGpu;
  };
  const std::vector<symbolic::SymSubgraphCost> totals =
      symbolic::sym_partition_costs(opt, partition, sym);

  for (const symbolic::SubgraphCrossover& sc : report.subgraphs) {
    // Intervals tile [lo, hi] with alternating devices.
    ASSERT_FALSE(sc.intervals.empty());
    EXPECT_EQ(sc.intervals.front().lo, report.lo);
    EXPECT_EQ(sc.intervals.back().hi, report.hi);
    for (size_t i = 0; i < sc.intervals.size(); ++i) {
      EXPECT_LE(sc.intervals[i].lo, sc.intervals[i].hi);
      if (i) {
        EXPECT_EQ(sc.intervals[i].lo, sc.intervals[i - 1].hi + 1);
        EXPECT_NE(sc.intervals[i].device, sc.intervals[i - 1].device);
      }
    }
    EXPECT_EQ(sc.boundaries.size(), sc.intervals.size() - 1);

    for (const symbolic::CrossoverBoundary& edge : sc.boundaries) {
      EXPECT_NE(edge.from, edge.to);
      // The certificate is self-consistent...
      EXPECT_EQ(preferred(edge.cpu_before, edge.gpu_before), edge.from);
      EXPECT_EQ(preferred(edge.cpu_after, edge.gpu_after), edge.to);
      // ...and matches an independent evaluation of the analytic model on
      // both sides of the boundary.
      const Subgraph& sg =
          partition.subgraphs[static_cast<size_t>(sc.subgraph)];
      const symbolic::SymSubgraphCost& total =
          totals[static_cast<size_t>(sc.subgraph)];
      const AnalyticTimes before =
          eval_subgraph_at(opt, sg, sym, total, options, edge.batch - 1);
      const AnalyticTimes after =
          eval_subgraph_at(opt, sg, sym, total, options, edge.batch);
      EXPECT_EQ(before.cpu, edge.cpu_before);
      EXPECT_EQ(before.gpu, edge.gpu_before);
      EXPECT_EQ(after.cpu, edge.cpu_after);
      EXPECT_EQ(after.gpu, edge.gpu_after);
    }
  }
}

TEST(Crossover, ReportSerializesToValidJson) {
  const Graph g = models::build_by_name("wide-deep");
  const Partition partition = partition_phased(g);
  const symbolic::SymbolicShapes sym = symbolic::infer_symbolic(g);
  const symbolic::CrossoverReport report =
      symbolic::analyze_crossover(g, partition, sym);
  std::string err;
  EXPECT_TRUE(telemetry::validate_json(report.to_json(), &err)) << err;
  EXPECT_NE(report.to_json().find("\"bucket_boundaries\""), std::string::npos);
  // The report names the graph (the zoo builder's internal name), not the
  // CLI alias.
  EXPECT_NE(report.to_string().find("crossover " + report.model),
            std::string::npos);
}

}  // namespace
}  // namespace duet
