// Unit tests for the tensor substrate: Shape, Tensor storage semantics,
// factories, and comparison helpers.

#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace duet {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, ScalarShape) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
}

TEST(Shape, Manipulators) {
  const Shape s{2, 3};
  EXPECT_EQ(s.with_dim(0, 7), Shape({7, 3}));
  EXPECT_EQ(s.append(4), Shape({2, 3, 4}));
  EXPECT_EQ(s.prepend(1), Shape({1, 2, 3}));
}

TEST(Shape, NegativeDimThrows) {
  EXPECT_THROW(Shape({-1, 2}), Error);
}

TEST(Shape, OutOfRangeDimThrows) {
  const Shape s{2};
  EXPECT_THROW(s.dim(1), Error);
}

TEST(Tensor, AllocationAndAccess) {
  Tensor t(Shape{2, 3});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.byte_size(), 24u);
  t.data<float>()[5] = 2.5f;
  EXPECT_EQ(t.data<float>()[5], 2.5f);
}

TEST(Tensor, UndefinedAccessThrows) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.data<float>(), Error);
}

TEST(Tensor, DtypeMismatchThrows) {
  Tensor t(Shape{2}, DType::kInt32);
  EXPECT_THROW(t.data<float>(), Error);
  EXPECT_NO_THROW(t.data<int32_t>());
}

TEST(Tensor, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::full(Shape{4}, 1.0f);
  Tensor alias = a;
  Tensor deep = a.clone();
  a.data<float>()[0] = 9.0f;
  EXPECT_EQ(alias.data<float>()[0], 9.0f);
  EXPECT_EQ(deep.data<float>()[0], 1.0f);
}

TEST(Tensor, ReshapeAliasesBuffer) {
  Tensor a = Tensor::arange(6);
  Tensor r = a.reshaped(Shape{2, 3});
  r.data<float>()[0] = -1.0f;
  EXPECT_EQ(a.data<float>()[0], -1.0f);
  EXPECT_THROW(a.reshaped(Shape{7}), Error);
}

TEST(Tensor, Factories) {
  const Tensor z = Tensor::zeros(Shape{3});
  EXPECT_EQ(z.data<float>()[2], 0.0f);
  const Tensor f = Tensor::full(Shape{3}, 7.0f);
  EXPECT_EQ(f.data<float>()[1], 7.0f);
  const Tensor ar = Tensor::arange(4);
  EXPECT_EQ(ar.data<float>()[3], 3.0f);
  const Tensor fv = Tensor::from_vector(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(fv.data<float>()[3], 4.0f);
  EXPECT_THROW(Tensor::from_vector(Shape{3}, {1, 2}), Error);
}

TEST(Tensor, RandnIsSeeded) {
  Rng r1(11);
  Rng r2(11);
  const Tensor a = Tensor::randn(Shape{32}, r1);
  const Tensor b = Tensor::randn(Shape{32}, r2);
  EXPECT_EQ(Tensor::max_abs_diff(a, b), 0.0f);
}

TEST(Tensor, AllcloseBehaviour) {
  const Tensor a = Tensor::full(Shape{4}, 1.0f);
  Tensor b = a.clone();
  EXPECT_TRUE(Tensor::allclose(a, b));
  b.data<float>()[2] += 1e-6f;
  EXPECT_TRUE(Tensor::allclose(a, b));
  b.data<float>()[2] += 1.0f;
  EXPECT_FALSE(Tensor::allclose(a, b));
  EXPECT_FALSE(Tensor::allclose(a, Tensor::full(Shape{5}, 1.0f)));
}

TEST(Tensor, MaxAbsDiffShapeMismatchThrows) {
  EXPECT_THROW(
      Tensor::max_abs_diff(Tensor::zeros(Shape{2}), Tensor::zeros(Shape{3})),
      Error);
}

TEST(Dtype, SizesAndNames) {
  EXPECT_EQ(dtype_size(DType::kFloat32), 4u);
  EXPECT_EQ(dtype_size(DType::kInt64), 8u);
  EXPECT_EQ(dtype_size(DType::kUInt8), 1u);
  EXPECT_STREQ(dtype_name(DType::kInt32), "int32");
}

}  // namespace
}  // namespace duet
