// Tests for the model zoo: structural expectations, config plumbing,
// forward-pass sanity, and the named factory.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "models/model_zoo.hpp"
#include "partition/partitioner.hpp"

namespace duet {
namespace {

using namespace models;

int count_ops(const Graph& g, OpType op) {
  int n = 0;
  for (const Node& node : g.nodes()) n += node.op == op;
  return n;
}

TEST(WideDeep, StructureMatchesConfig) {
  WideDeepConfig c = WideDeepConfig::tiny();
  c.rnn_layers = 3;
  c.ffn_layers = 4;
  Graph g = build_wide_deep(c);
  EXPECT_EQ(count_ops(g, OpType::kLSTM), 3);
  EXPECT_EQ(count_ops(g, OpType::kDense), 4 + 1 /*ffn out*/ + 1 /*wide*/ +
                                              1 /*rnn proj*/ + 1 /*cnn proj*/ +
                                              2 /*head*/);
  EXPECT_EQ(g.input_ids().size(), 4u);  // wide, deep, text, image
  EXPECT_EQ(g.outputs().size(), 1u);
}

TEST(WideDeep, ForwardProducesProbability) {
  Graph g = build_wide_deep(WideDeepConfig::tiny());
  Rng rng(1);
  const auto out = evaluate_graph(g, make_random_feeds(g, rng));
  const float p = out[0].data<float>()[0];
  EXPECT_GE(p, 0.0f);
  EXPECT_LE(p, 1.0f);
}

TEST(WideDeep, CnnDepthChangesGraphSize) {
  WideDeepConfig c18 = WideDeepConfig::tiny();
  WideDeepConfig c50 = WideDeepConfig::tiny();
  c50.cnn_depth = 50;
  EXPECT_GT(build_wide_deep(c50).num_nodes(), build_wide_deep(c18).num_nodes());
}

TEST(WideDeep, BatchPropagates) {
  WideDeepConfig c = WideDeepConfig::tiny();
  c.batch = 3;
  Graph g = build_wide_deep(c);
  EXPECT_EQ(g.node(g.outputs()[0]).out_shape.dim(0), 3);
}

TEST(Siamese, TwoIndependentBranches) {
  Graph g = build_siamese(SiameseConfig::tiny());
  EXPECT_EQ(count_ops(g, OpType::kLSTM), 2);
  EXPECT_EQ(g.input_ids().size(), 2u);
  Rng rng(2);
  const auto out = evaluate_graph(g, make_random_feeds(g, rng));
  EXPECT_GE(out[0].data<float>()[0], 0.0f);
  EXPECT_LE(out[0].data<float>()[0], 1.0f);
}

TEST(Mtdnn, TaskCountControlsOutputs) {
  MtDnnConfig c = MtDnnConfig::tiny();
  c.num_tasks = 7;
  Graph g = build_mtdnn(c);
  EXPECT_EQ(g.outputs().size(), 7u);
  EXPECT_EQ(count_ops(g, OpType::kGRU), 7);
  EXPECT_EQ(count_ops(g, OpType::kMultiHeadAttention), c.encoder_layers);
}

TEST(Mtdnn, TaskOutputsAreDistributions) {
  Graph g = build_mtdnn(MtDnnConfig::tiny());
  Rng rng(3);
  const auto out = evaluate_graph(g, make_random_feeds(g, rng));
  for (const Tensor& t : out) {
    float sum = 0.0f;
    for (int64_t i = 0; i < t.numel(); ++i) sum += t.data<float>()[i];
    EXPECT_NEAR(sum, 1.0f, 1e-4);
  }
}

TEST(ResNet, DepthsProduceExpectedConvCounts) {
  ResNetConfig c = ResNetConfig::tiny();
  c.depth = 18;
  EXPECT_EQ(count_ops(build_resnet(c), OpType::kConv2d), 20);  // 17 + 3 downsample
  c.depth = 34;
  EXPECT_EQ(count_ops(build_resnet(c), OpType::kConv2d), 36);  // 33 + 3
  c.depth = 50;
  EXPECT_EQ(count_ops(build_resnet(c), OpType::kConv2d), 53);  // 49 + 4
  c.depth = 101;
  EXPECT_EQ(count_ops(build_resnet(c), OpType::kConv2d), 104);
}

TEST(ResNet, UnsupportedDepthThrows) {
  ResNetConfig c;
  c.depth = 42;
  EXPECT_THROW(build_resnet(c), Error);
}

TEST(ResNet, ForwardIsDistribution) {
  Graph g = build_resnet(ResNetConfig::tiny());
  Rng rng(4);
  const auto out = evaluate_graph(g, make_random_feeds(g, rng));
  float sum = 0.0f;
  for (int64_t i = 0; i < out[0].numel(); ++i) sum += out[0].data<float>()[i];
  EXPECT_NEAR(sum, 1.0f, 1e-4);
}

TEST(Vgg, SixteenWeightLayers) {
  Graph g = build_vgg16(VggConfig::tiny());
  EXPECT_EQ(count_ops(g, OpType::kConv2d), 13);
  EXPECT_EQ(count_ops(g, OpType::kDense), 3);
}

TEST(SqueezeNet, FireModulesConcatChannels) {
  Graph g = build_squeezenet(SqueezeNetConfig::tiny());
  EXPECT_EQ(count_ops(g, OpType::kConcat), 8);
  Rng rng(5);
  const auto out = evaluate_graph(g, make_random_feeds(g, rng));
  EXPECT_EQ(out[0].shape().dim(1), SqueezeNetConfig::tiny().num_classes);
}

TEST(Dlrm, ParallelBottomStructure) {
  models::DlrmConfig c = models::DlrmConfig::tiny();
  c.num_sparse = 5;
  Graph g = build_dlrm(c);
  EXPECT_EQ(count_ops(g, OpType::kEmbedding), 5);
  EXPECT_EQ(g.input_ids().size(), 6u);  // dense + 5 sparse
  // Bottom MLP and the 5 embeddings are parallel branches.
  Partition p = partition_phased(g);
  bool found_wide_phase = false;
  for (const Phase& phase : p.phases) {
    if (phase.type == PhaseType::kMultiPath) {
      EXPECT_EQ(phase.subgraphs.size(), 6u);
      found_wide_phase = true;
    }
  }
  EXPECT_TRUE(found_wide_phase);
}

TEST(Dlrm, ForwardProducesProbability) {
  Graph g = build_dlrm(models::DlrmConfig::tiny());
  Rng rng(8);
  const auto out = evaluate_graph(g, make_random_feeds(g, rng));
  EXPECT_GE(out[0].data<float>()[0], 0.0f);
  EXPECT_LE(out[0].data<float>()[0], 1.0f);
}

TEST(Inception, ModuleCountsAndFactory) {
  Graph g = models::build_inception(models::InceptionConfig::tiny());
  EXPECT_EQ(count_ops(g, OpType::kConcat), 9);
  EXPECT_EQ(count_ops(g, OpType::kConv2d), 3 + 9 * 6);  // stem + 6 convs/module
  EXPECT_EQ(models::build_by_name("inception").name(), "inception-v1");
  EXPECT_EQ(models::build_by_name("dlrm").name(), "dlrm");
}

TEST(ModelZoo, FactoryByName) {
  EXPECT_EQ(build_by_name("wide-deep").name(), "wide-and-deep");
  EXPECT_EQ(build_by_name("siamese").name(), "siamese");
  EXPECT_EQ(build_by_name("mtdnn").name(), "mt-dnn");
  EXPECT_EQ(build_by_name("resnet34").name(), "resnet34");
  EXPECT_EQ(build_by_name("vgg16").name(), "vgg16");
  EXPECT_EQ(build_by_name("squeezenet").name(), "squeezenet");
  EXPECT_THROW(build_by_name("gpt4"), Error);
}

TEST(ModelZoo, SeedsMakeWeightsReproducible) {
  Graph a = build_siamese(SiameseConfig::tiny(), 99);
  Graph b = build_siamese(SiameseConfig::tiny(), 99);
  Rng rng(6);
  const auto feeds = make_random_feeds(a, rng);
  std::map<NodeId, Tensor> feeds_b;
  for (size_t i = 0; i < a.input_ids().size(); ++i) {
    feeds_b[b.input_ids()[i]] = feeds.at(a.input_ids()[i]);
  }
  EXPECT_TRUE(Tensor::allclose(evaluate_graph(a, feeds)[0],
                               evaluate_graph(b, feeds_b)[0]));
}

TEST(ModelZoo, RandomFeedsMatchEveryInput) {
  Graph g = build_wide_deep(WideDeepConfig::tiny());
  Rng rng(7);
  const auto feeds = make_random_feeds(g, rng);
  EXPECT_EQ(feeds.size(), g.input_ids().size());
  for (NodeId id : g.input_ids()) {
    ASSERT_TRUE(feeds.count(id));
    EXPECT_EQ(feeds.at(id).shape(), g.node(id).out_shape);
    EXPECT_EQ(feeds.at(id).dtype(), g.node(id).out_dtype);
  }
}

TEST(ModelZoo, AllFullSizeModelsValidate) {
  // Full-size graphs build and validate (no numeric execution here).
  for (const char* name : {"wide-deep", "siamese", "mtdnn", "resnet18",
                           "resnet50", "vgg16", "squeezenet"}) {
    EXPECT_NO_THROW(build_by_name(name).validate()) << name;
  }
}

}  // namespace
}  // namespace duet
