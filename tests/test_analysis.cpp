// Tests for the dataflow analysis suite: happens-before over the plan's
// trigger edges, per-value liveness intervals, the static memory planner's
// arena packing (including its soundness under the threaded executor's
// concurrency), the arena-backed executors, and the race checker against
// deliberately corrupted plans.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "analysis/liveness.hpp"
#include "analysis/memory_planner.hpp"
#include "analysis/race_checker.hpp"
#include "device/calibration.hpp"
#include "graph/builder.hpp"
#include "models/model_zoo.hpp"
#include "partition/partitioner.hpp"
#include "runtime/executor.hpp"

namespace duet {
namespace {

// Same shape as the verifier tests: one sequential cut, a two-branch
// multi-path phase, one joining cut — the smallest graph whose partition
// exercises cross-device plans.
Graph branchy_graph() {
  GraphBuilder b("branchy");
  const NodeId x = b.input(Shape{1, 16}, "x");
  const NodeId d = b.dense(x, 8);
  const NodeId a = b.relu(b.relu(d));
  const NodeId s = b.sigmoid(b.sigmoid(d));
  return b.finish({b.add(a, s)});
}

struct PlanFixture {
  Graph graph = branchy_graph();
  Partition partition;
  Placement placement;
  DevicePair devices = make_default_device_pair();
  ExecutionPlan plan;

  PlanFixture() {
    partition = partition_phased(graph);
    placement = Placement(partition.subgraphs.size(), DeviceKind::kCpu);
    for (const Phase& phase : partition.phases) {
      if (phase.type == PhaseType::kMultiPath) {
        placement.set(phase.subgraphs.back(), DeviceKind::kGpu);
        break;
      }
    }
    plan = ExecutionPlan::build(graph, partition, placement, devices,
                                CompileOptions::compiler_defaults());
  }

  PlanView view_with_subgraphs(const std::vector<PlannedSubgraph>& subgraphs) const {
    return PlanView{plan.parent(), plan.partition(),  plan.placement(),
                    subgraphs,     plan.consumers(),  plan.transfers(),
                    plan.step_order()};
  }
  PlanView view_with_order(const std::vector<int>& order) const {
    return PlanView{plan.parent(),    plan.partition(), plan.placement(),
                    plan.subgraphs(), plan.consumers(), plan.transfers(),
                    order};
  }
  PlanView full_view() const {
    return PlanView{plan.parent(),    plan.partition(), plan.placement(),
                    plan.subgraphs(), plan.consumers(), plan.transfers(),
                    plan.step_order()};
  }
};

// Synthetic subgraphs carrying only the trigger edges — all HappensBefore
// and the planner need.
std::vector<PlannedSubgraph> subgraphs_with_deps(
    const std::vector<std::vector<int>>& deps) {
  std::vector<PlannedSubgraph> subs(deps.size());
  for (size_t i = 0; i < deps.size(); ++i) {
    subs[i].id = static_cast<int>(i);
    subs[i].dep_subgraphs = deps[i];
  }
  return subs;
}

ValueInterval make_interval(NodeId value, DeviceKind device, uint64_t bytes,
                            int def_subgraph, std::vector<int> uses,
                            int def_step, int last_use_step,
                            bool held_to_end = false) {
  ValueInterval iv;
  iv.value = value;
  iv.device = device;
  iv.bytes = bytes;
  iv.def_subgraph = def_subgraph;
  iv.uses = std::move(uses);
  iv.def_step = def_step;
  iv.last_use_step = last_use_step;
  iv.held_to_end = held_to_end;
  return iv;
}

// --- happens-before -------------------------------------------------------------

TEST(HappensBeforeTest, ChainsAreTransitiveSiblingsConcurrent) {
  // Diamond: 0 -> {1, 2} -> 3.
  const auto subs = subgraphs_with_deps({{}, {0}, {0}, {1, 2}});
  const HappensBefore hb(subs);
  EXPECT_TRUE(hb.ordered(0, 1));
  EXPECT_TRUE(hb.ordered(0, 3));  // transitive
  EXPECT_TRUE(hb.ordered(2, 3));
  EXPECT_FALSE(hb.ordered(1, 2));  // siblings race
  EXPECT_FALSE(hb.ordered(2, 1));
  EXPECT_FALSE(hb.ordered(1, 1));  // strict, not reflexive
  EXPECT_FALSE(hb.ordered(3, 0));
}

TEST(HappensBeforeTest, AccessesPrecedeRequiresEveryPair) {
  const auto subs = subgraphs_with_deps({{}, {0}, {1}});
  const HappensBefore hb(subs);
  EXPECT_TRUE(accesses_precede({0, 1}, {2}, hb));
  EXPECT_FALSE(accesses_precede({0, 2}, {1}, hb));  // 2 after 1
  EXPECT_FALSE(accesses_precede({1}, {1}, hb));     // strictness
}

// --- liveness -------------------------------------------------------------------

TEST(LivenessTest, OutputsAreHeldToEnd) {
  PlanFixture f;
  const LivenessInfo live = analyze_liveness(f.plan);
  const NodeId out = f.graph.outputs()[0];
  bool found = false;
  for (const ValueInterval& iv : live.intervals) {
    if (iv.value != out) continue;
    found = true;
    EXPECT_TRUE(iv.held_to_end) << "graph output must stay live to end-of-plan";
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(live.num_steps, f.plan.subgraphs().size());
}

TEST(LivenessTest, TransferOnlyConsumerCountsAsRemoteUse) {
  PlanFixture f;
  // The GPU branch's output is consumed only across the link (by the CPU
  // join): its home GPU interval must record the remote reader as a use,
  // and a staged CPU copy must exist, defined by that reader.
  const LivenessInfo live = analyze_liveness(f.plan);
  int gpu_producer = -1;
  NodeId crossing = kInvalidNode;
  for (const TransferStep& t : f.plan.transfers()) {
    if (f.plan.subgraph(t.src_subgraph).device == DeviceKind::kGpu) {
      gpu_producer = t.src_subgraph;
      crossing = t.parent_node;
    }
  }
  ASSERT_NE(gpu_producer, -1) << "fixture must have a GPU-to-CPU edge";

  const ValueInterval* home = nullptr;
  const ValueInterval* staged = nullptr;
  for (const ValueInterval& iv : live.intervals) {
    if (iv.value != crossing) continue;
    (iv.device == DeviceKind::kGpu ? home : staged) = &iv;
  }
  ASSERT_NE(home, nullptr);
  ASSERT_NE(staged, nullptr) << "remote consumption must stage a copy";
  EXPECT_EQ(home->def_subgraph, gpu_producer);
  ASSERT_FALSE(home->uses.empty()) << "the transfer read must count as a use";
  EXPECT_GT(home->last_use_step, home->def_step);
  EXPECT_EQ(staged->def_subgraph, home->uses.front());
}

TEST(LivenessTest, HostInputStagedOnGpuOnly) {
  PlanFixture f;
  // Re-place the input-reading subgraph onto the GPU: the host input then
  // needs a staged GPU copy (def at plan entry) and still no CPU interval
  // (CPU reads host memory directly).
  const NodeId x = f.graph.input_ids()[0];
  Placement placement(f.partition.subgraphs.size(), DeviceKind::kCpu);
  for (const PlannedSubgraph& ps : f.plan.subgraphs()) {
    for (const PlannedSubgraph::Feed& feed : ps.feeds) {
      if (feed.parent_producer == x) placement.set(ps.id, DeviceKind::kGpu);
    }
  }
  const ExecutionPlan plan = ExecutionPlan::build(
      f.graph, f.partition, placement, f.devices,
      CompileOptions::compiler_defaults());
  const LivenessInfo live = analyze_liveness(plan);
  bool gpu_staged = false;
  for (const ValueInterval& iv : live.intervals) {
    if (iv.value != x) continue;
    EXPECT_EQ(iv.device, DeviceKind::kGpu) << "host inputs have no CPU interval";
    EXPECT_EQ(iv.def_subgraph, -1) << "staged at entry, not written by a subgraph";
    gpu_staged = true;
  }
  EXPECT_TRUE(gpu_staged);
}

TEST(LivenessTest, SingleSubgraphGraph) {
  GraphBuilder b("single");
  const NodeId x = b.input(Shape{1, 6}, "x");
  Graph g = b.finish({b.dense(x, 4)});
  const Partition part = partition_phased(g);
  ASSERT_EQ(part.subgraphs.size(), 1u);
  const DevicePair devices = make_default_device_pair();
  const ExecutionPlan plan =
      ExecutionPlan::build(g, part, Placement(1, DeviceKind::kCpu), devices,
                           CompileOptions::compiler_defaults());
  const LivenessInfo live = analyze_liveness(plan);
  ASSERT_EQ(live.intervals.size(), 1u);  // one boundary value, CPU input is free
  EXPECT_TRUE(live.intervals[0].held_to_end);
  EXPECT_EQ(live.num_steps, 1u);
  EXPECT_TRUE(verify_races(plan).ok());
  ASSERT_NE(plan.memory_plan(), nullptr);
  EXPECT_LE(plan.memory_plan()->arena_bytes(DeviceKind::kCpu),
            plan.memory_plan()->naive_bytes(DeviceKind::kCpu));
}

// --- memory planner -------------------------------------------------------------

TEST(MemoryPlannerTest, UnorderedSameDeviceIntervalsNeverShare) {
  // Two root subgraphs with no trigger chain: step intervals are disjoint
  // ([0,0] and [1,1]) but the threaded executor may run them in either
  // order, so packing by step intervals alone would corrupt one of them.
  const auto subs = subgraphs_with_deps({{}, {}});
  const HappensBefore hb(subs);
  LivenessInfo live;
  live.num_steps = 2;
  live.intervals.push_back(
      make_interval(10, DeviceKind::kCpu, 256, 0, {}, 0, 0));
  live.intervals.push_back(
      make_interval(11, DeviceKind::kCpu, 256, 1, {}, 1, 1));
  const MemoryPlan mp = plan_memory(live, hb);
  const ArenaSlot* a = mp.find(DeviceKind::kCpu, 10);
  const ArenaSlot* b = mp.find(DeviceKind::kCpu, 11);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(a->offset + a->bytes <= b->offset ||
              b->offset + b->bytes <= a->offset)
      << "concurrent intervals must not overlap";
}

TEST(MemoryPlannerTest, TriggerOrderedIntervalsShare) {
  // 0 -> 1 -> 2: value A (def 0, read by 1) is dead before 2 runs, so B
  // (def 2) reuses its space.
  const auto subs = subgraphs_with_deps({{}, {0}, {1}});
  const HappensBefore hb(subs);
  LivenessInfo live;
  live.num_steps = 3;
  live.intervals.push_back(
      make_interval(20, DeviceKind::kCpu, 256, 0, {1}, 0, 1));
  live.intervals.push_back(
      make_interval(21, DeviceKind::kCpu, 128, 2, {}, 2, 2));
  const MemoryPlan mp = plan_memory(live, hb);
  const ArenaSlot* b = mp.find(DeviceKind::kCpu, 21);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->offset, 0u) << "ordered successor should reuse the dead slot";
  EXPECT_EQ(mp.arena_bytes(DeviceKind::kCpu), 256u);
}

TEST(MemoryPlannerTest, HeldToEndSlotIsNeverReused) {
  // Same chain, but A is a graph output: it must survive to end-of-plan,
  // so B cannot take its space even though every access is ordered.
  const auto subs = subgraphs_with_deps({{}, {0}, {1}});
  const HappensBefore hb(subs);
  LivenessInfo live;
  live.num_steps = 3;
  live.intervals.push_back(make_interval(20, DeviceKind::kCpu, 256, 0, {1}, 0,
                                         1, /*held_to_end=*/true));
  live.intervals.push_back(
      make_interval(21, DeviceKind::kCpu, 128, 2, {}, 2, 2));
  const MemoryPlan mp = plan_memory(live, hb);
  const ArenaSlot* a = mp.find(DeviceKind::kCpu, 20);
  const ArenaSlot* b = mp.find(DeviceKind::kCpu, 21);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(a->offset + a->bytes <= b->offset ||
              b->offset + b->bytes <= a->offset);
}

TEST(MemoryPlannerTest, ZeroSizeValuesTakeNoSpace) {
  const auto subs = subgraphs_with_deps({{}});
  const HappensBefore hb(subs);
  LivenessInfo live;
  live.num_steps = 1;
  live.intervals.push_back(make_interval(30, DeviceKind::kCpu, 0, 0, {}, 0, 0));
  live.intervals.push_back(make_interval(31, DeviceKind::kCpu, 64, 0, {}, 0, 0));
  const MemoryPlan mp = plan_memory(live, hb);
  const ArenaSlot* z = mp.find(DeviceKind::kCpu, 30);
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->bytes, 0u);
  EXPECT_EQ(mp.arena_bytes(DeviceKind::kCpu), 64u);
}

TEST(MemoryPlannerTest, DuplicateSlotIsRejected) {
  MemoryPlan mp;
  ArenaSlot s;
  s.value = 1;
  s.device = DeviceKind::kCpu;
  s.bytes = 4;
  mp.add_slot(s);
  EXPECT_THROW(mp.add_slot(s), Error);
}

TEST(MemoryPlannerTest, ArenaNeverExceedsNaiveAcrossPlacements) {
  PlanFixture f;
  for (const int mask : {0, 1, 5, 7, 15}) {
    Placement placement(f.partition.subgraphs.size(), DeviceKind::kCpu);
    for (size_t i = 0; i < f.partition.subgraphs.size(); ++i) {
      if ((mask >> i) & 1) placement.set(static_cast<int>(i), DeviceKind::kGpu);
    }
    const ExecutionPlan plan =
        ExecutionPlan::build(f.graph, f.partition, placement, f.devices,
                             CompileOptions::compiler_defaults());
    ASSERT_NE(plan.memory_plan(), nullptr);
    for (int d = 0; d < kNumDeviceKinds; ++d) {
      const auto kind = static_cast<DeviceKind>(d);
      EXPECT_LE(plan.memory_plan()->arena_bytes(kind),
                plan.memory_plan()->naive_bytes(kind))
          << "placement mask " << mask << " on " << device_kind_name(kind);
    }
    EXPECT_TRUE(verify_races(plan).ok()) << "placement mask " << mask;
  }
}

// --- race checker ---------------------------------------------------------------

TEST(RaceCheckerTest, CleanPlanVerifies) {
  PlanFixture f;
  const VerifyResult r = verify_races(f.plan);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(RaceCheckerTest, ShuffledStepOrderIsCaught) {
  PlanFixture f;
  std::vector<int> order = f.plan.step_order();
  std::reverse(order.begin(), order.end());
  const VerifyResult r = verify_races(f.view_with_order(order), nullptr);
  ASSERT_TRUE(r.has_error("race-step-order")) << r.to_string();
  bool attributed = false;
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == "race-step-order" && d.subgraph >= 0 &&
        d.node != kInvalidNode) {
      attributed = true;
    }
  }
  EXPECT_TRUE(attributed) << "diagnostic must name the value and the reader";
}

TEST(RaceCheckerTest, ClearedDependenciesAreCaught) {
  PlanFixture f;
  std::vector<PlannedSubgraph> subgraphs = f.plan.subgraphs();
  // Strip the join's trigger edges: its reads now race with the writes.
  int victim = -1;
  for (PlannedSubgraph& ps : subgraphs) {
    if (ps.dep_subgraphs.size() >= 2) {
      victim = ps.id;
      ps.dep_subgraphs.clear();
    }
  }
  ASSERT_NE(victim, -1);
  const VerifyResult r = verify_races(f.view_with_subgraphs(subgraphs), nullptr);
  ASSERT_TRUE(r.has_error("race-read-write")) << r.to_string();
  bool attributed = false;
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == "race-read-write" && d.subgraph == victim) attributed = true;
  }
  EXPECT_TRUE(attributed) << "diagnostic must blame the un-synchronized reader";
  // The cross-device edge into the join lost its ordering too.
  EXPECT_TRUE(r.has_error("race-transfer-order")) << r.to_string();
}

TEST(RaceCheckerTest, UnorderedDoubleWriteIsCaught) {
  PlanFixture f;
  std::vector<PlannedSubgraph> subgraphs = f.plan.subgraphs();
  const HappensBefore hb(subgraphs);
  // Find two concurrent subgraphs (the two branches) and make them both
  // claim the same produced value.
  int a = -1;
  int b = -1;
  for (size_t i = 0; i < subgraphs.size() && a < 0; ++i) {
    for (size_t j = i + 1; j < subgraphs.size(); ++j) {
      const int x = static_cast<int>(i);
      const int y = static_cast<int>(j);
      if (!hb.ordered(x, y) && !hb.ordered(y, x)) {
        a = x;
        b = y;
        break;
      }
    }
  }
  ASSERT_GE(a, 0) << "fixture must have concurrent subgraphs";
  ASSERT_FALSE(subgraphs[static_cast<size_t>(a)].produces.empty());
  subgraphs[static_cast<size_t>(b)].produces.push_back(
      subgraphs[static_cast<size_t>(a)].produces[0]);
  const VerifyResult r = verify_races(f.view_with_subgraphs(subgraphs), nullptr);
  EXPECT_TRUE(r.has_error("race-write-write")) << r.to_string();
}

TEST(RaceCheckerTest, MissingSlotsAreCaught) {
  PlanFixture f;
  const MemoryPlan empty;
  const VerifyResult r = verify_races(f.full_view(), &empty);
  EXPECT_TRUE(r.has_error("slot-missing")) << r.to_string();
}

TEST(RaceCheckerTest, MisSizedSlotIsCaught) {
  PlanFixture f;
  ASSERT_NE(f.plan.memory_plan(), nullptr);
  MemoryPlan corrupted;
  bool shrunk = false;
  for (ArenaSlot slot : f.plan.memory_plan()->slots()) {
    if (!shrunk && slot.bytes > 0) {
      slot.bytes -= 1;
      shrunk = true;
    }
    corrupted.add_slot(std::move(slot));
  }
  ASSERT_TRUE(shrunk);
  const VerifyResult r = verify_races(f.full_view(), &corrupted);
  EXPECT_TRUE(r.has_error("slot-size")) << r.to_string();
}

TEST(RaceCheckerTest, OverlappingUnorderedSlotsAreCaught) {
  PlanFixture f;
  ASSERT_NE(f.plan.memory_plan(), nullptr);
  // Collapse every offset to zero: values with concurrent accesses now
  // overlap, which the alias rule must refuse to certify.
  MemoryPlan corrupted;
  for (ArenaSlot slot : f.plan.memory_plan()->slots()) {
    slot.offset = 0;
    corrupted.add_slot(std::move(slot));
  }
  const VerifyResult r = verify_races(f.full_view(), &corrupted);
  EXPECT_TRUE(r.has_error("race-slot-alias")) << r.to_string();
}

// --- arena-backed execution -----------------------------------------------------

TEST(ArenaExecutionTest, ExecutorsAreBitIdenticalFromTheArena) {
  Graph graph = models::build_wide_deep(models::WideDeepConfig::tiny());
  DevicePair devices = make_default_device_pair(51);
  const Partition partition = partition_phased(graph);
  Placement placement(partition.subgraphs.size(), DeviceKind::kCpu);
  placement.set(2, DeviceKind::kGpu);
  placement.set(3, DeviceKind::kGpu);
  const ExecutionPlan plan =
      ExecutionPlan::build(graph, partition, placement, devices,
                           CompileOptions::compiler_defaults());
  ASSERT_NE(plan.memory_plan(), nullptr);

  Rng rng(12);
  const auto feeds = models::make_random_feeds(graph, rng);
  SimExecutor sim(devices);
  ThreadedExecutor threaded(devices);
  const ExecutionResult sim_result = sim.run(plan, feeds, false);
  const ExecutionResult thr_result = threaded.run(plan, feeds);
  ASSERT_EQ(sim_result.outputs.size(), thr_result.outputs.size());
  for (size_t i = 0; i < sim_result.outputs.size(); ++i) {
    const Tensor& a = sim_result.outputs[i];
    const Tensor& b = thr_result.outputs[i];
    ASSERT_EQ(a.byte_size(), b.byte_size());
    EXPECT_EQ(std::memcmp(a.raw_data(), b.raw_data(), a.byte_size()), 0)
        << "executors must agree bit-for-bit when running from the arena";
  }
}

TEST(ArenaExecutionTest, ArenaFreeFallbackMatchesBitForBit) {
  PlanFixture f;
  ExecutionPlan stripped = f.plan;
  stripped.clear_memory_plan();
  ASSERT_EQ(stripped.memory_plan(), nullptr);

  Rng rng(7);
  const auto feeds = models::make_random_feeds(f.graph, rng);
  SimExecutor sim(f.devices);
  ThreadedExecutor threaded(f.devices);
  const ExecutionResult arena_result = sim.run(f.plan, feeds, false);
  const ExecutionResult plain_sim = sim.run(stripped, feeds, false);
  const ExecutionResult plain_thr = threaded.run(stripped, feeds);
  ASSERT_EQ(arena_result.outputs.size(), 1u);
  for (const ExecutionResult* other : {&plain_sim, &plain_thr}) {
    ASSERT_EQ(other->outputs.size(), 1u);
    const Tensor& a = arena_result.outputs[0];
    const Tensor& b = other->outputs[0];
    ASSERT_EQ(a.byte_size(), b.byte_size());
    EXPECT_EQ(std::memcmp(a.raw_data(), b.raw_data(), a.byte_size()), 0)
        << "per-tensor fallback must compute the same bits as the arena path";
  }
}

TEST(ArenaExecutionTest, RepeatedArenaRunsStayCorrect) {
  PlanFixture f;
  Rng rng(3);
  const auto feeds = models::make_random_feeds(f.graph, rng);
  const auto expect = evaluate_graph(f.graph, feeds);
  ThreadedExecutor threaded(f.devices);
  for (int run = 0; run < 5; ++run) {
    const ExecutionResult r = threaded.run(f.plan, feeds);
    ASSERT_EQ(r.outputs.size(), expect.size());
    EXPECT_TRUE(Tensor::allclose(r.outputs[0], expect[0], 1e-3f, 1e-4f));
  }
}

}  // namespace
}  // namespace duet
