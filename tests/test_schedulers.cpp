// Tests for the scheduling algorithms (§IV-C, Algorithm 1): quality ordering
// (Fig. 13), correction convergence, optimality vs exhaustive search, and
// the factory.

#include <gtest/gtest.h>

#include "device/calibration.hpp"
#include "models/model_zoo.hpp"
#include "sched/scheduler.hpp"

namespace duet {
namespace {

struct SchedBench {
  Graph graph;
  DevicePair devices;
  Partition partition;
  std::vector<SubgraphProfile> profiles;
  std::unique_ptr<LatencyEvaluator> evaluator;
  Rng rng{77};

  explicit SchedBench(Graph g)
      : graph(std::move(g)),
        devices(make_default_device_pair(41)),
        partition(partition_phased(graph)) {
    Profiler profiler(devices);
    ProfileOptions opts;
    opts.with_noise = false;
    opts.runs = 1;
    profiles = profiler.profile_partition(partition, graph, opts);
    evaluator = std::make_unique<LatencyEvaluator>(partition, graph, profiles,
                                                   devices.link->params());
  }

  SchedulingContext ctx() {
    return SchedulingContext{&partition, &profiles, evaluator.get(), &rng};
  }
};

TEST(Schedulers, GreedyCorrectionMatchesExhaustiveOnWideDeep) {
  SchedBench bench(models::build_wide_deep());
  auto ctx = bench.ctx();
  const ScheduleResult greedy = make_scheduler("greedy-correction")->schedule(ctx);
  const ScheduleResult ideal = make_scheduler("exhaustive")->schedule(ctx);
  EXPECT_NEAR(greedy.est_latency_s, ideal.est_latency_s,
              ideal.est_latency_s * 1e-9);
}

TEST(Schedulers, GreedyCorrectionMatchesExhaustiveOnSiamese) {
  SchedBench bench(models::build_siamese());
  auto ctx = bench.ctx();
  const ScheduleResult greedy = make_scheduler("greedy-correction")->schedule(ctx);
  const ScheduleResult ideal = make_scheduler("exhaustive")->schedule(ctx);
  EXPECT_NEAR(greedy.est_latency_s, ideal.est_latency_s,
              ideal.est_latency_s * 1e-9);
}

TEST(Schedulers, GreedyCorrectionMatchesExhaustiveOnMtdnn) {
  SchedBench bench(models::build_mtdnn());
  auto ctx = bench.ctx();
  const ScheduleResult greedy = make_scheduler("greedy-correction")->schedule(ctx);
  const ScheduleResult ideal = make_scheduler("exhaustive")->schedule(ctx);
  // Greedy may be epsilon off on MT-DNN's 7-subgraph space; allow 2%.
  EXPECT_LE(greedy.est_latency_s, ideal.est_latency_s * 1.02);
}

TEST(Schedulers, QualityOrderingMatchesFig13) {
  SchedBench bench(models::build_wide_deep());
  auto ctx = bench.ctx();
  const double ideal = make_scheduler("exhaustive")->schedule(ctx).est_latency_s;
  const double greedy =
      make_scheduler("greedy-correction")->schedule(ctx).est_latency_s;
  const double rr = make_scheduler("round-robin")->schedule(ctx).est_latency_s;

  double random_sum = 0.0;
  double random_corr_sum = 0.0;
  for (int s = 0; s < 10; ++s) {
    random_sum += make_scheduler("random")->schedule(ctx).est_latency_s;
    random_corr_sum +=
        make_scheduler("random+correction")->schedule(ctx).est_latency_s;
  }
  const double random = random_sum / 10;
  const double random_corr = random_corr_sum / 10;

  EXPECT_GT(random, greedy * 1.3);   // random clearly worse
  EXPECT_GT(rr, greedy * 1.3);       // round-robin clearly worse
  EXPECT_LE(greedy, random_corr * 1.001);
  EXPECT_NEAR(greedy, ideal, ideal * 1e-9);
}

TEST(Schedulers, CorrectionNeverHurts) {
  SchedBench bench(models::build_mtdnn());
  auto ctx = bench.ctx();
  for (int s = 0; s < 5; ++s) {
    const ScheduleResult random = make_scheduler("random")->schedule(ctx);
    Placement p = random.placement;
    double latency = random.est_latency_s;
    correct_placement(ctx, p, latency);
    EXPECT_LE(latency, random.est_latency_s + 1e-12);
    // Reported latency matches a fresh evaluation of the placement.
    EXPECT_NEAR(latency, ctx.evaluator->evaluate(p), 1e-12);
  }
}

TEST(Schedulers, GreedyUsesFewerEvaluationsThanRandomCorrection) {
  // The paper's stated reason for greedy init: fewer correction iterations.
  SchedBench bench(models::build_wide_deep());
  auto ctx = bench.ctx();
  const ScheduleResult greedy = make_scheduler("greedy-correction")->schedule(ctx);
  int64_t random_evals = 0;
  for (int s = 0; s < 10; ++s) {
    random_evals += make_scheduler("random+correction")->schedule(ctx).evaluations;
  }
  EXPECT_LE(greedy.evaluations, random_evals / 10 + 2);
}

TEST(Schedulers, SingleDevicePlacements) {
  SchedBench bench(models::build_siamese());
  auto ctx = bench.ctx();
  const ScheduleResult cpu = make_scheduler("cpu-only")->schedule(ctx);
  const ScheduleResult gpu = make_scheduler("gpu-only")->schedule(ctx);
  EXPECT_TRUE(cpu.placement.single_device());
  EXPECT_TRUE(gpu.placement.single_device());
  EXPECT_EQ(cpu.placement.of(0), DeviceKind::kCpu);
  EXPECT_EQ(gpu.placement.of(0), DeviceKind::kGpu);
}

TEST(Schedulers, ExhaustiveRefusesHugeSpaces) {
  SchedBench bench(models::build_wide_deep());
  PartitionOptions fine;
  fine.granularity = PartitionOptions::Granularity::kFine;
  Partition big = partition_phased(bench.graph, fine);
  Profiler profiler(bench.devices);
  ProfileOptions opts;
  opts.runs = 1;
  opts.with_noise = false;
  auto profiles = profiler.profile_partition(big, bench.graph, opts);
  LatencyEvaluator evaluator(big, bench.graph, profiles,
                             bench.devices.link->params());
  Rng rng(1);
  SchedulingContext ctx{&big, &profiles, &evaluator, &rng};
  try {
    make_scheduler("exhaustive")->schedule(ctx);
    FAIL() << "expected the exhaustive cap to throw";
  } catch (const Error& e) {
    // The refusal must tell the user the cap and what to do instead.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("exhaustive scheduler"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cap is 20"), std::string::npos) << msg;
    EXPECT_NE(msg.find("greedy-correction"), std::string::npos) << msg;
  }
}

TEST(Schedulers, RandomIsSeedDependentButValid) {
  SchedBench bench(models::build_mtdnn());
  auto ctx = bench.ctx();
  const ScheduleResult a = make_scheduler("random")->schedule(ctx);
  const ScheduleResult b = make_scheduler("random")->schedule(ctx);
  EXPECT_EQ(a.placement.size(), bench.partition.subgraphs.size());
  EXPECT_EQ(b.placement.size(), bench.partition.subgraphs.size());
  // With 7 subgraphs two consecutive draws almost surely differ.
  EXPECT_NE(a.placement, b.placement);
}

TEST(Schedulers, FactoryRejectsUnknown) {
  EXPECT_THROW(make_scheduler("quantum-annealing"), Error);
}

TEST(Schedulers, FactoryNamesRoundTrip) {
  for (const char* name :
       {"random", "round-robin", "random+correction", "greedy-correction",
        "greedy-only", "exhaustive", "analytic-dp", "annealing", "cpu-only",
        "gpu-only"}) {
    EXPECT_EQ(make_scheduler(name)->name(), name);
  }
}

TEST(Schedulers, AnnealingApproachesGreedyWithMoreEvaluations) {
  SchedBench bench(models::build_wide_deep());
  auto ctx = bench.ctx();
  const ScheduleResult greedy = make_scheduler("greedy-correction")->schedule(ctx);
  const ScheduleResult sa = make_scheduler("annealing")->schedule(ctx);
  // Within 15% of greedy-correction's schedule...
  EXPECT_LE(sa.est_latency_s, greedy.est_latency_s * 1.15);
  // ...but at a much higher search cost.
  EXPECT_GT(sa.evaluations, greedy.evaluations * 5);
}

TEST(Schedulers, DlrmSchedulesHeterogeneously) {
  SchedBench bench(models::build_dlrm());
  auto ctx = bench.ctx();
  const double greedy =
      make_scheduler("greedy-correction")->schedule(ctx).est_latency_s;
  const double cpu = make_scheduler("cpu-only")->schedule(ctx).est_latency_s;
  const double gpu = make_scheduler("gpu-only")->schedule(ctx).est_latency_s;
  EXPECT_LE(greedy, std::min(cpu, gpu) + 1e-12);
}

// --- placement --------------------------------------------------------------------

TEST(Placement, BasicOps) {
  Placement p(4, DeviceKind::kCpu);
  EXPECT_TRUE(p.single_device());
  p.set(2, DeviceKind::kGpu);
  EXPECT_FALSE(p.single_device());
  EXPECT_EQ(p.of(2), DeviceKind::kGpu);
  p.flip(2);
  EXPECT_EQ(p.of(2), DeviceKind::kCpu);
  EXPECT_THROW(p.of(4), Error);
  EXPECT_THROW(p.set(-1, DeviceKind::kCpu), Error);
}

TEST(Placement, ToStringFormat) {
  Placement p(3, DeviceKind::kCpu);
  p.set(1, DeviceKind::kGpu);
  EXPECT_EQ(p.to_string(), "CPU={0,2} GPU={1}");
}

}  // namespace
}  // namespace duet
