// Unit tests for the graph IR: construction, shape inference, traversals,
// evaluation, attributes, and DOT export.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/dot.hpp"
#include "graph/shape_inference.hpp"
#include "graph/traversal.hpp"

namespace duet {
namespace {

Graph diamond_graph() {
  // x -> relu -> a ; x -> sigmoid -> b ; add(a, b) -> out
  GraphBuilder b("diamond");
  const NodeId x = b.input(Shape{2, 4}, "x");
  const NodeId a = b.relu(x);
  const NodeId s = b.sigmoid(x);
  const NodeId out = b.add(a, s);
  return b.finish({out});
}

TEST(Graph, BuilderAssignsIdsAndNames) {
  Graph g = diamond_graph();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.node(0).name, "x");
  EXPECT_TRUE(g.node(1).name.find("relu") != std::string::npos);
  EXPECT_EQ(g.outputs().size(), 1u);
}

TEST(Graph, ConsumersAdjacency) {
  Graph g = diamond_graph();
  EXPECT_EQ(g.consumers(0).size(), 2u);  // relu and sigmoid read x
  EXPECT_EQ(g.consumers(1).size(), 1u);
  EXPECT_TRUE(g.consumers(3).empty());
}

TEST(Graph, AddNodeRejectsForwardEdges) {
  Graph g;
  EXPECT_THROW(g.add_node(OpType::kReLU, {0}), Error);  // node 0 doesn't exist
}

TEST(Graph, ValidateRequiresOutputs) {
  Graph g;
  g.add_input(Shape{1});
  EXPECT_THROW(g.validate(), Error);
}

TEST(Graph, InputAndConstantListing) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 2});
  const NodeId d = b.dense(x, 3);
  Graph g = b.finish({d});
  EXPECT_EQ(g.input_ids().size(), 1u);
  EXPECT_EQ(g.constant_ids().size(), 2u);  // weight + bias
  EXPECT_EQ(g.param_bytes(), (2 * 3 + 3) * sizeof(float));
}

TEST(Graph, EvaluateDiamond) {
  Graph g = diamond_graph();
  std::map<NodeId, Tensor> feeds{
      {0, Tensor::from_vector(Shape{2, 4}, {1, -1, 2, -2, 0, 3, -3, 4})}};
  const auto out = evaluate_graph(g, feeds);
  ASSERT_EQ(out.size(), 1u);
  // out = relu(x) + sigmoid(x); check one positive and one negative entry.
  EXPECT_NEAR(out[0].data<float>()[0], 1.0f + 1.0f / (1.0f + std::exp(-1.0f)),
              1e-5);
  EXPECT_NEAR(out[0].data<float>()[1], 0.0f + 1.0f / (1.0f + std::exp(1.0f)),
              1e-5);
}

TEST(Graph, EvaluateMissingFeedThrows) {
  Graph g = diamond_graph();
  EXPECT_THROW(evaluate_graph(g, {}), Error);
}

TEST(Graph, EvaluateWrongFeedShapeThrows) {
  Graph g = diamond_graph();
  std::map<NodeId, Tensor> feeds{{0, Tensor::zeros(Shape{3, 3})}};
  EXPECT_THROW(evaluate_graph(g, feeds), Error);
}

// --- shape inference across ops ------------------------------------------------

TEST(ShapeInference, DenseAndFlatten) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 3, 4, 4});
  const NodeId f = b.flatten(x);
  EXPECT_EQ(b.graph().node(f).out_shape, Shape({2, 48}));
  const NodeId d = b.dense(f, 10);
  EXPECT_EQ(b.graph().node(d).out_shape, Shape({2, 10}));
}

TEST(ShapeInference, Conv2dGeometry) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 3, 32, 32});
  const NodeId c = b.conv2d(x, 16, 3, 2, 1);
  EXPECT_EQ(b.graph().node(c).out_shape, Shape({1, 16, 16, 16}));
  const NodeId p = b.max_pool2d(c, 2, 2, 0);
  EXPECT_EQ(b.graph().node(p).out_shape, Shape({1, 16, 8, 8}));
  const NodeId gap = b.global_avg_pool(p);
  EXPECT_EQ(b.graph().node(gap).out_shape, Shape({1, 16}));
}

TEST(ShapeInference, RnnOps) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 7, 5});
  const NodeId l = b.lstm(x, 11);
  EXPECT_EQ(b.graph().node(l).out_shape, Shape({2, 7, 11}));
  const NodeId g = b.gru(l, 3);
  EXPECT_EQ(b.graph().node(g).out_shape, Shape({2, 7, 3}));
  const NodeId last = b.last_timestep(g);
  EXPECT_EQ(b.graph().node(last).out_shape, Shape({2, 3}));
  const NodeId mean = b.seq_mean(g);
  EXPECT_EQ(b.graph().node(mean).out_shape, Shape({2, 3}));
}

TEST(ShapeInference, ConcatAxis) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 3});
  const NodeId y = b.input(Shape{2, 5});
  const NodeId c = b.concat({x, y}, 1);
  EXPECT_EQ(b.graph().node(c).out_shape, Shape({2, 8}));
}

TEST(ShapeInference, ConcatMismatchThrows) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 3});
  const NodeId y = b.input(Shape{3, 3});
  EXPECT_THROW(b.concat({x, y}, 1), Error);
}

TEST(ShapeInference, MatMulMismatchThrows) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 3});
  const NodeId y = b.input(Shape{4, 5});
  EXPECT_THROW(b.matmul(x, y), Error);
}

TEST(ShapeInference, AttentionPreservesShape) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 6, 8});
  const NodeId a = b.attention(x, 4);
  EXPECT_EQ(b.graph().node(a).out_shape, Shape({2, 6, 8}));
}

TEST(ShapeInference, ReshapeChecksNumel) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 6});
  const NodeId r = b.reshape(x, Shape{3, 4});
  EXPECT_EQ(b.graph().node(r).out_shape, Shape({3, 4}));
  EXPECT_THROW(b.reshape(x, Shape{5, 5}), Error);
}

TEST(ShapeInference, ArgmaxProducesInt) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 9});
  const NodeId a = b.graph().add_node(OpType::kArgMax, {x});
  EXPECT_EQ(b.graph().node(a).out_dtype, DType::kInt32);
  EXPECT_EQ(b.graph().node(a).out_shape, Shape({2}));
}

// --- flops / bytes / launches ------------------------------------------------------

TEST(CostAnalysis, DenseFlops) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 10});
  const NodeId d = b.dense(x, 20);
  const Graph& g = b.graph();
  EXPECT_DOUBLE_EQ(node_flops(g, g.node(d)), 2.0 * 2 * 10 * 20);
}

TEST(CostAnalysis, LstmLaunchesScaleWithSeq) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 50, 8});
  const NodeId l = b.lstm(x, 16);
  const Graph& g = b.graph();
  EXPECT_EQ(node_kernel_launches(g, g.node(l)), 3 * 50);
  // Doubling the sequence doubles launches.
  GraphBuilder b2("t2");
  const NodeId x2 = b2.input(Shape{1, 100, 8});
  const NodeId l2 = b2.lstm(x2, 16);
  EXPECT_EQ(node_kernel_launches(b2.graph(), b2.graph().node(l2)), 3 * 100);
}

TEST(CostAnalysis, MetadataOpsAreFree) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 6});
  const NodeId r = b.reshape(x, Shape{3, 4});
  const Graph& g = b.graph();
  EXPECT_EQ(node_flops(g, g.node(r)), 0.0);
  EXPECT_EQ(node_kernel_launches(g, g.node(r)), 0);
}

TEST(CostAnalysis, EmbeddingBytesAreGatherOnly) {
  GraphBuilder b("t");
  const NodeId idx = b.input(Shape{1, 4}, "idx", DType::kInt32);
  const NodeId e = b.embedding(idx, 1000, 64);
  const Graph& g = b.graph();
  const NodeBytes bytes = node_bytes(g, g.node(e));
  // Must NOT count the whole 1000x64 table.
  EXPECT_LT(bytes.read, 1000 * 64 * 4ull);
  EXPECT_EQ(bytes.written, 4ull * 64 * 4);
}

// --- traversal -----------------------------------------------------------------------

TEST(Traversal, LevelsOnDiamond) {
  Graph g = diamond_graph();
  const auto levels = node_levels(g);
  EXPECT_EQ(levels[0], 0);  // input
  EXPECT_EQ(levels[1], 0);  // relu: first compute level
  EXPECT_EQ(levels[2], 0);
  EXPECT_EQ(levels[3], 1);  // add depends on both
}

TEST(Traversal, Reachability) {
  Graph g = diamond_graph();
  EXPECT_TRUE(reaches(g, 0, 3));
  EXPECT_TRUE(reaches(g, 1, 3));
  EXPECT_FALSE(reaches(g, 1, 2));
  EXPECT_FALSE(reaches(g, 3, 0));
  EXPECT_TRUE(reaches(g, 2, 2));
}

TEST(Traversal, LiveNodes) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 2});
  const NodeId used = b.relu(x);
  const NodeId dead = b.sigmoid(x);
  (void)dead;
  Graph g = b.finish({used});
  const auto live = live_nodes(g);
  EXPECT_TRUE(live[static_cast<size_t>(used)]);
  EXPECT_FALSE(live[static_cast<size_t>(dead)]);
}

TEST(Traversal, CriticalPathPicksHeavyBranch) {
  Graph g = diamond_graph();
  // Make sigmoid (node 2) very expensive.
  const auto cost = [](NodeId id) { return id == 2 ? 100.0 : 1.0; };
  const CriticalPath cp = critical_path(g, cost);
  EXPECT_NEAR(cp.total_cost, 102.0, 1e-9);  // x -> sigmoid -> add
  ASSERT_EQ(cp.nodes.size(), 3u);
  EXPECT_EQ(cp.nodes[1], 2);
}

// --- attrs -------------------------------------------------------------------------

TEST(Attrs, TypedAccessors) {
  AttrMap m;
  m.set("i", int64_t{42});
  m.set("d", 1.5);
  m.set("s", std::string("hi"));
  m.set("v", std::vector<int64_t>{1, 2, 3});
  EXPECT_EQ(m.get_int("i"), 42);
  EXPECT_DOUBLE_EQ(m.get_float("d"), 1.5);
  EXPECT_DOUBLE_EQ(m.get_float("i"), 42.0);  // int promotes
  EXPECT_EQ(m.get_string("s"), "hi");
  EXPECT_EQ(m.get_ints("v").size(), 3u);
  EXPECT_EQ(m.get_int_or("missing", 7), 7);
  EXPECT_THROW(m.get_int("missing"), Error);
  EXPECT_THROW(m.get_int("s"), Error);
}

TEST(Attrs, ToStringStable) {
  AttrMap m;
  m.set("b", int64_t{2});
  m.set("a", int64_t{1});
  EXPECT_EQ(m.to_string(), "a=1, b=2");  // sorted by key (std::map)
}

// --- dot ---------------------------------------------------------------------------

TEST(Dot, ContainsNodesAndEdges) {
  Graph g = diamond_graph();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3"), std::string::npos);
}

TEST(Dot, ClusterGrouping) {
  Graph g = diamond_graph();
  DotOptions opts;
  opts.cluster = [](NodeId id) { return id <= 1 ? 0 : 1; };
  const std::string dot = to_dot(g, opts);
  EXPECT_NE(dot.find("cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_1"), std::string::npos);
}

// --- op registry ---------------------------------------------------------------------

TEST(OpRegistry, NameRoundTrip) {
  for (OpType op : {OpType::kDense, OpType::kLSTM, OpType::kConcat,
                    OpType::kMultiHeadAttention, OpType::kSeqLast}) {
    EXPECT_EQ(op_from_name(op_name(op)), op);
  }
  EXPECT_THROW(op_from_name("bogus_op"), Error);
}

}  // namespace
}  // namespace duet
