// Tests for the telemetry layer: metrics registry semantics, histogram
// percentile math, span nesting and thread attribution (including under the
// real-thread executor), Chrome-trace JSON validity, the predicted-vs-
// observed drift join, and the disabled-mode guarantee that instrumentation
// never perturbs numeric results.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "duet/engine.hpp"
#include "models/model_zoo.hpp"
#include "runtime/executor.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/drift.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"

namespace duet {
namespace {

// Fresh global state for every test: zeroed metrics, empty span buffers.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::MetricsRegistry::instance().reset();
    telemetry::SpanCollector::instance().clear();
  }
  void TearDown() override {
    telemetry::set_enabled(false);
    telemetry::SpanCollector::instance().clear();
    telemetry::MetricsRegistry::instance().reset();
  }
};

TEST_F(TelemetryTest, DisabledByDefaultAndCountersAreGuarded) {
  EXPECT_FALSE(telemetry::enabled());
  telemetry::Counter& c = telemetry::counter("test.guarded");
  c.add(5);
  EXPECT_EQ(c.value(), 0u) << "disabled counter must not record";

  telemetry::ScopedTelemetry on(true);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(TelemetryTest, ResetPreservesRegisteredReferences) {
  telemetry::ScopedTelemetry on(true);
  telemetry::Counter& c = telemetry::counter("test.stable_ref");
  c.add(3);
  telemetry::MetricsRegistry::instance().reset();
  // The same reference stays valid and records again after reset.
  c.add(2);
  EXPECT_EQ(c.value(), 2u);
  EXPECT_EQ(&telemetry::counter("test.stable_ref"), &c);
}

TEST_F(TelemetryTest, KindClashThrows) {
  telemetry::counter("test.kind_clash");
  EXPECT_THROW(telemetry::gauge("test.kind_clash"), std::runtime_error);
  EXPECT_THROW(telemetry::histogram("test.kind_clash"), std::runtime_error);
}

TEST_F(TelemetryTest, GaugeRecordMaxKeepsHighWatermark) {
  telemetry::ScopedTelemetry on(true);
  telemetry::Gauge& g = telemetry::gauge("test.watermark");
  g.record_max(10.0);
  g.record_max(4.0);
  g.record_max(25.0);
  EXPECT_DOUBLE_EQ(g.value(), 25.0);
  g.set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST_F(TelemetryTest, HistogramPercentilesOnKnownDistribution) {
  telemetry::ScopedTelemetry on(true);
  telemetry::Histogram& h =
      telemetry::histogram("test.uniform", {25.0, 50.0, 75.0, 100.0});
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));

  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.observed_min(), 1.0);
  EXPECT_DOUBLE_EQ(h.observed_max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Bucket interpolation is exact for a uniform fill of aligned buckets.
  EXPECT_NEAR(h.percentile(0.50), 50.0, 2.0);
  EXPECT_NEAR(h.percentile(0.95), 95.0, 2.0);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 2.0);
  // Quantiles clamp to the observed range.
  EXPECT_GE(h.percentile(0.0), 1.0);
  EXPECT_LE(h.percentile(1.0), 100.0);
}

TEST_F(TelemetryTest, HistogramOverflowBucketAndReset) {
  telemetry::ScopedTelemetry on(true);
  telemetry::Histogram& h = telemetry::histogram("test.overflow", {1.0, 2.0});
  h.observe(1e9);  // way past the last bound
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.observed_max(), 1e9);
  EXPECT_LE(h.percentile(0.99), 1e9);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST_F(TelemetryTest, RejectsNonAscendingBounds) {
  EXPECT_THROW(telemetry::histogram("test.bad_bounds", {3.0, 2.0}),
               std::runtime_error);
}

TEST_F(TelemetryTest, SpanNestingDepthAndOrdering) {
  telemetry::ScopedTelemetry on(true);
  {
    telemetry::ScopedSpan outer("outer", "test");
    {
      telemetry::ScopedSpan inner("inner", "test", "annotation");
    }
  }
  std::vector<telemetry::Span> spans =
      telemetry::SpanCollector::instance().drain();
  ASSERT_EQ(spans.size(), 2u);
  // drain() sorts by start time: outer opened first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].detail, "annotation");
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  EXPECT_GE(spans[0].dur_us, spans[1].dur_us);
  EXPECT_LE(spans[0].start_us, spans[1].start_us);
  EXPECT_EQ(telemetry::SpanCollector::instance().pending(), 0u);
}

TEST_F(TelemetryTest, DisabledSpansRecordNothing) {
  {
    telemetry::ScopedSpan span("ghost", "test");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(telemetry::SpanCollector::instance().pending(), 0u);
}

TEST_F(TelemetryTest, ThreadedExecutorSpansFromMultipleThreads) {
  telemetry::ScopedTelemetry on(true);
  Graph model = models::build_wide_deep(models::WideDeepConfig::tiny());
  DevicePair devices = make_default_device_pair(7);
  Partition partition = partition_phased(model);
  const size_t n = partition.subgraphs.size();
  ASSERT_GE(n, 2u);
  // Split placement so both workers execute subgraphs.
  Placement placement(n);
  for (size_t i = 0; i < n; ++i) {
    placement.set(static_cast<int>(i),
                  i % 2 == 0 ? DeviceKind::kCpu : DeviceKind::kGpu);
  }
  ExecutionPlan plan = ExecutionPlan::build(model, partition, placement,
                                            devices,
                                            CompileOptions::compiler_defaults());
  Rng rng(11);
  const auto feeds = models::make_random_feeds(model, rng);
  ThreadedExecutor executor(devices);
  ExecutionResult result = executor.run(plan, feeds);
  ASSERT_FALSE(result.outputs.empty());

  std::vector<telemetry::Span> spans =
      telemetry::SpanCollector::instance().drain();
  std::set<uint32_t> exec_tids;
  size_t exec_spans = 0;
  for (const telemetry::Span& s : spans) {
    if (s.category != "exec") continue;
    exec_tids.insert(s.tid);
    if (s.name.rfind("worker:", 0) != 0) ++exec_spans;
  }
  EXPECT_GE(exec_tids.size(), 2u) << "both workers should record spans";
  EXPECT_EQ(exec_spans, n) << "one exec span per planned subgraph";
  EXPECT_GT(telemetry::counter("executor.threaded.launches").value(), 0u);
  EXPECT_GT(telemetry::counter("executor.threaded.transfers").value(), 0u);
  EXPECT_GT(telemetry::histogram("executor.threaded.queue_wait_us").count(), 0u);
}

TEST_F(TelemetryTest, JsonEscapeAndNumber) {
  EXPECT_EQ(telemetry::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(telemetry::json_escape(std::string("x\x01y", 3)), "x\\u0001y");
  EXPECT_EQ(telemetry::json_number(1.5), "1.5");
  EXPECT_EQ(telemetry::json_number(0.0 / 0.0), "0");  // NaN stays valid JSON
}

TEST_F(TelemetryTest, ValidateJsonAcceptsAndRejects) {
  std::string err;
  EXPECT_TRUE(telemetry::validate_json("{\"a\":[1,2.5,\"x\",true,null]}", &err))
      << err;
  EXPECT_FALSE(telemetry::validate_json("{", &err));
  EXPECT_FALSE(telemetry::validate_json("[1,2,}", &err));
  EXPECT_FALSE(telemetry::validate_json("{} trailing", &err));
  EXPECT_FALSE(telemetry::validate_json("", &err));
}

TEST_F(TelemetryTest, ChromeTraceExportIsValidJson) {
  telemetry::ScopedTelemetry on(true);
  {
    // Hostile characters must survive the escaping path.
    telemetry::ScopedSpan span("quote\"back\\slash", "exec", "line\nbreak");
  }
  Graph model = models::build_wide_deep(models::WideDeepConfig::tiny());
  DevicePair devices = make_default_device_pair(7);
  Partition partition = partition_phased(model);
  Placement placement(partition.subgraphs.size(), DeviceKind::kCpu);
  ExecutionPlan plan = ExecutionPlan::build(model, partition, placement,
                                            devices,
                                            CompileOptions::compiler_defaults());
  Rng rng(3);
  const auto feeds = models::make_random_feeds(model, rng);
  SimExecutor executor(devices);
  ExecutionResult result = executor.run(plan, feeds, false);

  std::vector<telemetry::Span> spans =
      telemetry::SpanCollector::instance().drain();
  ASSERT_FALSE(spans.empty());
  const std::string merged =
      telemetry::export_chrome_trace(spans, &result.timeline);
  std::string err;
  EXPECT_TRUE(telemetry::validate_json(merged, &err)) << err;
  // Both halves are present: wall-clock pid and the modeled CPU pid.
  EXPECT_NE(merged.find("\"pid\":10"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(merged.find("CPU (modeled)"), std::string::npos);

  // The standalone Timeline export rides the same writer and stays valid.
  EXPECT_TRUE(telemetry::validate_json(result.timeline.to_chrome_trace(), &err))
      << err;
}

TEST_F(TelemetryTest, DriftJoinMatchesSimObservation) {
  telemetry::ScopedTelemetry on(true);
  DuetOptions options;
  options.enable_fallback = false;
  DuetEngine engine(models::build_wide_deep(models::WideDeepConfig::tiny()),
                    options);
  Rng rng(5);
  const auto feeds = models::make_random_feeds(engine.model(), rng);
  ExecutionResult sim = engine.infer(feeds);

  const DriftReport report = compute_drift(
      "tiny-wd", "sim", engine.partition(), engine.plan().placement(),
      engine.report().profiles, sim.timeline,
      engine.report().schedule.est_latency_s, sim.latency_s);

  ASSERT_EQ(report.entries.size(), engine.partition().subgraphs.size());
  for (const DriftEntry& e : report.entries) {
    EXPECT_GT(e.est_s, 0.0);
    EXPECT_GT(e.observed_s, 0.0) << "subgraph " << e.subgraph
                                 << " has no exec event";
    // The sim executor replays the same modeled costs the scheduler used, so
    // per-subgraph skew must be small (noise-free run).
    EXPECT_LT(std::abs(e.rel_err()), 0.10) << report.to_string();
  }
  EXPECT_LT(std::abs(report.total_rel_err()), 0.10) << report.to_string();
  EXPECT_GE(report.max_abs_rel_err(), report.mean_abs_rel_err());

  std::string err;
  EXPECT_TRUE(telemetry::validate_json(report.to_json(), &err)) << err;
}

TEST_F(TelemetryTest, MetricsToJsonIsValid) {
  telemetry::ScopedTelemetry on(true);
  telemetry::counter("test.json_counter").add(2);
  telemetry::gauge("test.json_gauge").set(1.25);
  telemetry::histogram("test.json_hist").observe(42.0);
  const std::string doc = telemetry::MetricsRegistry::instance().to_json();
  std::string err;
  EXPECT_TRUE(telemetry::validate_json(doc, &err)) << err;
  EXPECT_NE(doc.find("test.json_counter"), std::string::npos);
}

TEST_F(TelemetryTest, DisabledModeLeavesExecutorOutputsIdentical) {
  Graph model = models::build_wide_deep(models::WideDeepConfig::tiny());
  DevicePair devices = make_default_device_pair(13);
  Partition partition = partition_phased(model);
  const size_t n = partition.subgraphs.size();
  Placement placement(n);
  for (size_t i = 0; i < n; ++i) {
    placement.set(static_cast<int>(i),
                  i % 2 == 0 ? DeviceKind::kGpu : DeviceKind::kCpu);
  }
  ExecutionPlan plan = ExecutionPlan::build(model, partition, placement,
                                            devices,
                                            CompileOptions::compiler_defaults());
  Rng rng(17);
  const auto feeds = models::make_random_feeds(model, rng);
  SimExecutor executor(devices);

  ExecutionResult off = executor.run(plan, feeds, false);
  ExecutionResult on_result;
  {
    telemetry::ScopedTelemetry on(true);
    on_result = executor.run(plan, feeds, false);
  }
  ASSERT_EQ(off.outputs.size(), on_result.outputs.size());
  for (size_t i = 0; i < off.outputs.size(); ++i) {
    // Bit-identical: telemetry must never touch the numeric path.
    EXPECT_TRUE(Tensor::allclose(off.outputs[i], on_result.outputs[i], 0.0f, 0.0f));
  }
  EXPECT_DOUBLE_EQ(off.latency_s, on_result.latency_s);
}

TEST_F(TelemetryTest, ParseLogLevelSpecs) {
  EXPECT_EQ(parse_log_level("debug", LogLevel::kWarn), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO", LogLevel::kWarn), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kWarn), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off", LogLevel::kWarn), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("3", LogLevel::kWarn), LogLevel::kError);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("", LogLevel::kError), LogLevel::kError);
}

TEST_F(TelemetryTest, LogWarningsFeedCountersEvenWhenSilenced) {
  telemetry::ScopedTelemetry on(true);
  const LogLevel before = Logger::level();
  Logger::set_level(LogLevel::kOff);  // nothing printed...
  DUET_LOG_WARN << "synthetic warning";
  DUET_LOG_ERROR << "synthetic error";
  DUET_LOG_INFO << "info is not counted";
  Logger::set_level(before);
  // ...but the counters still saw both.
  EXPECT_EQ(telemetry::counter("log.warnings").value(), 1u);
  EXPECT_EQ(telemetry::counter("log.errors").value(), 1u);
}

}  // namespace
}  // namespace duet
