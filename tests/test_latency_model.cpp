// Tests for the latency evaluator (the scheduler's measure_latency): overlap
// of independent subgraphs, serialization on one device, communication
// charging, and agreement with the simulated executor.

#include <gtest/gtest.h>

#include "device/calibration.hpp"
#include "graph/builder.hpp"
#include "models/model_zoo.hpp"
#include "profile/profiler.hpp"
#include "runtime/executor.hpp"
#include "sched/latency_model.hpp"

namespace duet {
namespace {

// Fixture: a two-branch model with known, strongly asymmetric costs.
struct Bench {
  Graph graph;
  DevicePair devices;
  Partition partition;
  std::vector<SubgraphProfile> profiles;

  explicit Bench(Graph g)
      : graph(std::move(g)),
        devices(make_default_device_pair(31)),
        partition(partition_phased(graph)) {
    Profiler profiler(devices);
    ProfileOptions opts;
    opts.with_noise = false;
    opts.runs = 1;
    profiles = profiler.profile_partition(partition, graph, opts);
  }

  LatencyEvaluator evaluator() {
    return LatencyEvaluator(partition, graph, profiles, devices.link->params());
  }
};

Graph two_branch_model() {
  // Hidden width 768 puts the per-branch CPU and GPU LSTM costs in the same
  // ballpark (as in the Siamese workload), so splitting the branches across
  // devices is profitable.
  GraphBuilder b("two-branch", 3);
  const NodeId a_in = b.input(Shape{1, 64, 128}, "a");
  const NodeId b_in = b.input(Shape{1, 64, 128}, "b");
  NodeId left = b.lstm(a_in, 768, "left.lstm");
  left = b.last_timestep(left);
  NodeId right = b.lstm(b_in, 768, "right.lstm");
  right = b.last_timestep(right);
  const NodeId join = b.concat({left, right}, 1);
  return b.finish({b.dense(join, 8, "", "head")});
}

TEST(LatencyModel, SingleDeviceSerializesBothBranches) {
  Bench bench(two_branch_model());
  LatencyEvaluator eval = bench.evaluator();
  const size_t n = bench.partition.subgraphs.size();

  const double cpu_only = eval.evaluate(Placement(n, DeviceKind::kCpu));
  // All on CPU: branches run back to back; makespan >= sum of branch times.
  double branch_sum = 0.0;
  for (const auto& prof : bench.profiles) {
    branch_sum += prof.time_on(DeviceKind::kCpu);
  }
  EXPECT_GE(cpu_only, branch_sum);
}

TEST(LatencyModel, SplitOverlapsBranches) {
  Bench bench(two_branch_model());
  LatencyEvaluator eval = bench.evaluator();
  const size_t n = bench.partition.subgraphs.size();
  ASSERT_EQ(n, 3u);

  Placement split(n, DeviceKind::kCpu);
  split.set(1, DeviceKind::kGpu);  // one branch to GPU
  const double split_latency = eval.evaluate(split);
  const double cpu_only = eval.evaluate(Placement(n, DeviceKind::kCpu));
  EXPECT_LT(split_latency, cpu_only);
}

TEST(LatencyModel, CrossDeviceEdgePaysTransfer) {
  // With device-equal compute costs (forced by editing the profiles), any
  // GPU placement must be strictly slower than CPU-only by exactly the extra
  // PCIe traffic it induces — the communication charging the correction step
  // relies on.
  Bench bench(two_branch_model());
  for (SubgraphProfile& prof : bench.profiles) {
    const double t = prof.time_on(DeviceKind::kCpu);
    prof.per_device[static_cast<int>(DeviceKind::kGpu)].mean_s = t;
  }
  LatencyEvaluator eval(bench.partition, bench.graph, bench.profiles,
                        bench.devices.link->params());
  const size_t n = bench.partition.subgraphs.size();

  const double cpu_only = eval.evaluate(Placement(n, DeviceKind::kCpu));
  // Head on GPU: pays branch->head transfer plus the output d2h.
  Placement head_gpu(n, DeviceKind::kCpu);
  head_gpu.set(2, DeviceKind::kGpu);
  EXPECT_GT(eval.evaluate(head_gpu), cpu_only);
  // Everything on GPU: compute identical, but pays h2d for all host inputs
  // and d2h for the output.
  const double gpu_only = eval.evaluate(Placement(n, DeviceKind::kGpu));
  EXPECT_GT(gpu_only, cpu_only);
}

TEST(LatencyModel, EventsAreConsistent) {
  Bench bench(two_branch_model());
  LatencyEvaluator eval = bench.evaluator();
  const size_t n = bench.partition.subgraphs.size();
  Placement split(n, DeviceKind::kCpu);
  split.set(1, DeviceKind::kGpu);

  std::vector<ScheduleEvent> events;
  const double latency = eval.evaluate(split, &events);
  ASSERT_EQ(events.size(), n);

  double makespan = 0.0;
  double device_end[2] = {0.0, 0.0};
  for (const ScheduleEvent& e : events) {
    EXPECT_LE(e.ready, e.start);
    EXPECT_LT(e.start, e.finish);
    // No overlap on the same device.
    EXPECT_GE(e.start, device_end[static_cast<int>(e.device)] - 1e-12);
    device_end[static_cast<int>(e.device)] = e.finish;
    makespan = std::max(makespan, e.finish);
  }
  EXPECT_LE(makespan, latency + 1e-12);
}

TEST(LatencyModel, EvaluationCounterAdvances) {
  Bench bench(two_branch_model());
  LatencyEvaluator eval = bench.evaluator();
  const size_t n = bench.partition.subgraphs.size();
  EXPECT_EQ(eval.evaluations(), 0);
  eval.evaluate(Placement(n));
  eval.evaluate(Placement(n));
  EXPECT_EQ(eval.evaluations(), 2);
}

TEST(LatencyModel, EdgeAndInputByteQueries) {
  Bench bench(two_branch_model());
  LatencyEvaluator eval = bench.evaluator();
  // Branch subgraphs (0, 1) feed the head (2); head consumes no host input.
  EXPECT_GT(eval.edge_bytes(0, 2), 0u);
  EXPECT_GT(eval.edge_bytes(1, 2), 0u);
  EXPECT_EQ(eval.edge_bytes(0, 1), 0u);
  EXPECT_GT(eval.host_input_bytes(0), 0u);
  EXPECT_EQ(eval.host_input_bytes(2), 0u);
}

// --- fast path vs reference ----------------------------------------------------

void expect_identical(const LatencyEvaluator& eval, const Placement& placement) {
  std::vector<ScheduleEvent> fast_events;
  std::vector<ScheduleEvent> ref_events;
  const double fast = eval.evaluate(placement, &fast_events);
  const double ref = eval.evaluate_reference(placement, &ref_events);
  // Bit-identical, not approximately equal: the fast path must perform the
  // same floating-point operations in the same order.
  EXPECT_EQ(fast, ref);
  ASSERT_EQ(fast_events.size(), ref_events.size());
  for (size_t i = 0; i < fast_events.size(); ++i) {
    EXPECT_EQ(fast_events[i].subgraph, ref_events[i].subgraph);
    EXPECT_EQ(fast_events[i].device, ref_events[i].device);
    EXPECT_EQ(fast_events[i].ready, ref_events[i].ready);
    EXPECT_EQ(fast_events[i].start, ref_events[i].start);
    EXPECT_EQ(fast_events[i].finish, ref_events[i].finish);
  }
}

void expect_identical_everywhere(const LatencyEvaluator& eval, size_t n,
                                 Rng& rng, int random_placements) {
  expect_identical(eval, Placement(n, DeviceKind::kCpu));
  expect_identical(eval, Placement(n, DeviceKind::kGpu));
  for (int trial = 0; trial < random_placements; ++trial) {
    Placement p(n, DeviceKind::kCpu);
    for (size_t i = 0; i < n; ++i) {
      if (rng.coin()) p.set(static_cast<int>(i), DeviceKind::kGpu);
    }
    expect_identical(eval, p);
  }
}

TEST(LatencyModel, FastPathMatchesReferenceOnFixture) {
  Bench bench(two_branch_model());
  LatencyEvaluator eval = bench.evaluator();
  Rng rng(7);
  expect_identical_everywhere(eval, bench.partition.subgraphs.size(), rng, 20);
}

TEST(LatencyModel, FastPathMatchesReferenceAcrossZoo) {
  Rng rng(11);
  for (const std::string& name : models::zoo_model_names()) {
    SCOPED_TRACE(name);
    Bench bench(models::build_by_name(name));
    LatencyEvaluator eval = bench.evaluator();
    expect_identical_everywhere(eval, bench.partition.subgraphs.size(), rng, 20);
  }
}

TEST(LatencyModel, FastPathMatchesReferenceWithLanes) {
  // Intra-device concurrency exercises the multi-lane heap paths.
  Bench bench(models::build_by_name("inception"));
  LatencyEvaluator eval(bench.partition, bench.graph, bench.profiles,
                        bench.devices.link->params(),
                        LaneConfig::gpu_streams(3));
  Rng rng(13);
  expect_identical_everywhere(eval, bench.partition.subgraphs.size(), rng, 20);
}

TEST(LatencyModel, MemoServesRevisitedPlacements) {
  Bench bench(two_branch_model());
  LatencyEvaluator eval = bench.evaluator();
  const size_t n = bench.partition.subgraphs.size();
  Placement p(n, DeviceKind::kCpu);
  p.set(1, DeviceKind::kGpu);

  const double first = eval.evaluate(p);
  EXPECT_EQ(eval.memo_hits(), 0);
  const double again = eval.evaluate(p);
  EXPECT_EQ(again, first);
  EXPECT_EQ(eval.memo_hits(), 1);
  // Served evaluations still count as evaluations (ablation counters).
  EXPECT_EQ(eval.evaluations(), 2);

  // Requesting events bypasses the memo but must agree with it.
  std::vector<ScheduleEvent> events;
  EXPECT_EQ(eval.evaluate(p, &events), first);
  EXPECT_EQ(eval.memo_hits(), 1);
  ASSERT_EQ(events.size(), n);

  eval.set_memo_enabled(false);
  EXPECT_EQ(eval.evaluate(p), first);
  EXPECT_EQ(eval.memo_hits(), 1);
}

TEST(LatencyModel, AgreesWithSimExecutor) {
  // The evaluator and the (noiseless) simulated executor implement the same
  // semantics, so their latencies for the same plan must match closely.
  Bench bench(two_branch_model());
  LatencyEvaluator eval = bench.evaluator();
  const size_t n = bench.partition.subgraphs.size();
  Placement split(n, DeviceKind::kCpu);
  split.set(1, DeviceKind::kGpu);

  const double eval_latency = eval.evaluate(split);
  ExecutionPlan plan =
      ExecutionPlan::build(bench.graph, bench.partition, split, bench.devices,
                           CompileOptions::compiler_defaults());
  SimExecutor executor(bench.devices);
  const double exec_latency = executor.run_latency_only(plan, false);
  EXPECT_NEAR(eval_latency, exec_latency, eval_latency * 0.05);
}

}  // namespace
}  // namespace duet
