// Tests for both executors: numeric equivalence with the reference
// interpreter under arbitrary placements, timeline invariants, transfer
// accounting, and threaded-executor concurrency correctness.

#include <gtest/gtest.h>

#include "device/calibration.hpp"
#include "models/model_zoo.hpp"
#include "runtime/executor.hpp"
#include "runtime/queue.hpp"

#include <thread>

namespace duet {
namespace {

struct ExecBench {
  Graph graph;
  DevicePair devices;
  Partition partition;

  explicit ExecBench(Graph g)
      : graph(std::move(g)),
        devices(make_default_device_pair(51)),
        partition(partition_phased(graph)) {}

  ExecutionPlan plan(const Placement& placement) const {
    return ExecutionPlan::build(graph, partition, placement, devices,
                                CompileOptions::compiler_defaults());
  }
};

// Every placement of the tiny Wide-and-Deep must compute reference outputs.
class PlacementSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlacementSweep, SimExecutorMatchesReference) {
  ExecBench bench(models::build_wide_deep(models::WideDeepConfig::tiny()));
  const size_t n = bench.partition.subgraphs.size();
  ASSERT_EQ(n, 5u);
  const int mask = GetParam();
  Placement placement(n);
  for (size_t i = 0; i < n; ++i) {
    placement.set(static_cast<int>(i),
                  (mask >> i) & 1 ? DeviceKind::kGpu : DeviceKind::kCpu);
  }
  ExecutionPlan plan = bench.plan(placement);
  SimExecutor executor(bench.devices);

  Rng rng(8);
  const auto feeds = models::make_random_feeds(bench.graph, rng);
  const auto expect = evaluate_graph(bench.graph, feeds);
  ExecutionResult result = executor.run(plan, feeds, false);
  ASSERT_EQ(result.outputs.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_TRUE(Tensor::allclose(result.outputs[i], expect[i], 1e-3f, 1e-4f))
        << "placement mask " << mask;
  }
  EXPECT_GT(result.latency_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllMasks, PlacementSweep,
                         ::testing::Values(0, 1, 5, 10, 13, 21, 27, 31));

TEST(SimExecutorTest, TimelineInvariants) {
  ExecBench bench(models::build_wide_deep(models::WideDeepConfig::tiny()));
  const size_t n = bench.partition.subgraphs.size();
  Placement placement(n, DeviceKind::kCpu);
  placement.set(3, DeviceKind::kGpu);
  ExecutionPlan plan = bench.plan(placement);
  SimExecutor executor(bench.devices);

  Rng rng(9);
  const auto feeds = models::make_random_feeds(bench.graph, rng);
  ExecutionResult result = executor.run(plan, feeds, false);

  // Per-device exec events may not overlap; all events within [0, latency].
  double device_end[2] = {0.0, 0.0};
  int exec_events = 0;
  int transfer_events = 0;
  for (const TimelineEvent& e : result.timeline.events()) {
    EXPECT_GE(e.start, 0.0);
    EXPECT_LE(e.end, result.latency_s + 1e-12);
    if (e.kind == TimelineEvent::Kind::kExec) {
      ++exec_events;
      EXPECT_GE(e.start, device_end[static_cast<int>(e.device)] - 1e-12);
      device_end[static_cast<int>(e.device)] = e.end;
    } else {
      ++transfer_events;
    }
  }
  EXPECT_EQ(exec_events, static_cast<int>(n));
  // GPU island: input h2d + result back to the CPU-side consumer.
  EXPECT_GE(transfer_events, 2);
  EXPECT_NEAR(result.timeline.makespan(), result.latency_s,
              result.latency_s * 0.05);
}

TEST(SimExecutorTest, NoiseMakesRunsVary) {
  ExecBench bench(models::build_siamese(models::SiameseConfig::tiny()));
  Placement placement(bench.partition.subgraphs.size(), DeviceKind::kCpu);
  ExecutionPlan plan = bench.plan(placement);
  SimExecutor executor(bench.devices);
  const double a = executor.run_latency_only(plan, true);
  const double b = executor.run_latency_only(plan, true);
  EXPECT_NE(a, b);
  const double c = executor.run_latency_only(plan, false);
  const double d = executor.run_latency_only(plan, false);
  EXPECT_DOUBLE_EQ(c, d);
}

TEST(SimExecutorTest, LatencyOnlyMatchesFullRun) {
  ExecBench bench(models::build_mtdnn(models::MtDnnConfig::tiny()));
  Placement placement(bench.partition.subgraphs.size(), DeviceKind::kGpu);
  ExecutionPlan plan = bench.plan(placement);
  SimExecutor executor(bench.devices);
  Rng rng(10);
  const auto feeds = models::make_random_feeds(bench.graph, rng);
  const double full = executor.run(plan, feeds, false).latency_s;
  const double fast = executor.run_latency_only(plan, false);
  EXPECT_NEAR(full, fast, full * 1e-9);
}

// --- threaded executor -----------------------------------------------------------

class ThreadedSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ThreadedSweep, MatchesReferenceUnderRealConcurrency) {
  const std::string name = GetParam();
  Graph g = [&] {
    if (name == "wide-deep")
      return models::build_wide_deep(models::WideDeepConfig::tiny());
    if (name == "siamese")
      return models::build_siamese(models::SiameseConfig::tiny());
    return models::build_mtdnn(models::MtDnnConfig::tiny());
  }();
  ExecBench bench(std::move(g));
  const size_t n = bench.partition.subgraphs.size();
  // Alternate placement to force cross-device traffic.
  Placement placement(n);
  for (size_t i = 0; i < n; ++i) {
    placement.set(static_cast<int>(i),
                  i % 2 ? DeviceKind::kGpu : DeviceKind::kCpu);
  }
  ExecutionPlan plan = bench.plan(placement);
  ThreadedExecutor executor(bench.devices);

  Rng rng(11);
  const auto feeds = models::make_random_feeds(bench.graph, rng);
  const auto expect = evaluate_graph(bench.graph, feeds);
  ExecutionResult result = executor.run(plan, feeds);
  ASSERT_EQ(result.outputs.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_TRUE(Tensor::allclose(result.outputs[i], expect[i], 1e-3f, 1e-4f));
  }
  EXPECT_GT(result.latency_s, 0.0);
  EXPECT_EQ(result.timeline.events().size(), n);
}

INSTANTIATE_TEST_SUITE_P(Zoo, ThreadedSweep,
                         ::testing::Values("wide-deep", "siamese", "mtdnn"));

TEST(ThreadedExecutorTest, RepeatedRunsStayCorrect) {
  ExecBench bench(models::build_wide_deep(models::WideDeepConfig::tiny()));
  Placement placement(bench.partition.subgraphs.size(), DeviceKind::kCpu);
  placement.set(2, DeviceKind::kGpu);
  placement.set(3, DeviceKind::kGpu);
  ExecutionPlan plan = bench.plan(placement);
  ThreadedExecutor executor(bench.devices);
  Rng rng(12);
  const auto feeds = models::make_random_feeds(bench.graph, rng);
  const auto expect = evaluate_graph(bench.graph, feeds);
  for (int run = 0; run < 5; ++run) {
    ExecutionResult r = executor.run(plan, feeds);
    EXPECT_TRUE(Tensor::allclose(r.outputs[0], expect[0], 1e-3f, 1e-4f));
  }
}

// --- sync queue --------------------------------------------------------------------

TEST(SyncQueue, FifoOrder) {
  SyncQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  int item = 0;
  EXPECT_EQ(q.try_pop(item), SyncQueue<int>::TryPop::kItem);
  EXPECT_EQ(item, 3);
  EXPECT_EQ(q.try_pop(item), SyncQueue<int>::TryPop::kEmpty);
}

TEST(SyncQueue, TryPopDistinguishesEmptyFromClosed) {
  SyncQueue<int> q;
  int item = 0;
  EXPECT_EQ(q.try_pop(item), SyncQueue<int>::TryPop::kEmpty);
  q.push(5);
  q.close();
  // Closed queues still drain their backlog before reporting kClosed.
  EXPECT_EQ(q.try_pop(item), SyncQueue<int>::TryPop::kItem);
  EXPECT_EQ(item, 5);
  EXPECT_EQ(q.try_pop(item), SyncQueue<int>::TryPop::kClosed);
  EXPECT_EQ(q.try_pop(item), SyncQueue<int>::TryPop::kClosed);
}

// Regression: a busy-poll consumer must terminate once the queue is closed
// and drained. With the old optional<T> try_pop, "empty" and "closed and
// empty" were indistinguishable in one atomic observation, so this loop
// could spin forever after close().
TEST(SyncQueue, BusyPollLoopTerminatesAfterClose) {
  SyncQueue<int> q;
  int sum = 0;
  std::thread poller([&] {
    for (;;) {
      int item = 0;
      switch (q.try_pop(item)) {
        case SyncQueue<int>::TryPop::kItem:
          sum += item;
          break;
        case SyncQueue<int>::TryPop::kEmpty:
          std::this_thread::yield();
          break;
        case SyncQueue<int>::TryPop::kClosed:
          return;
      }
    }
  });
  for (int i = 1; i <= 100; ++i) q.push(i);
  q.close();
  poller.join();  // hangs here if close() is not observed by the poller
  EXPECT_EQ(sum, 5050);
}

TEST(SyncQueue, CloseDrainsThenNullopt) {
  SyncQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_TRUE(q.closed());
}

TEST(SyncQueue, BlockingPopWakesOnPush) {
  SyncQueue<int> q;
  std::thread producer([&] { q.push(42); });
  EXPECT_EQ(q.pop(), 42);
  producer.join();
}

TEST(SyncQueue, ManyProducersOneConsumer) {
  SyncQueue<int> q;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) q.push(1);
    });
  }
  int sum = 0;
  for (int i = 0; i < 4 * kPerProducer; ++i) sum += *q.pop();
  for (auto& t : producers) t.join();
  EXPECT_EQ(sum, 4 * kPerProducer);
}

// --- timeline ----------------------------------------------------------------------

TEST(TimelineTest, BusyTimeAndMakespan) {
  Timeline tl;
  tl.add({TimelineEvent::Kind::kExec, 0, DeviceKind::kCpu, "a", 0.0, 1.0});
  tl.add({TimelineEvent::Kind::kExec, 1, DeviceKind::kGpu, "b", 0.5, 2.0});
  tl.add({TimelineEvent::Kind::kTransfer, 1, DeviceKind::kCpu, "x", 2.0, 2.25});
  EXPECT_DOUBLE_EQ(tl.makespan(), 2.25);
  EXPECT_DOUBLE_EQ(tl.busy_time(DeviceKind::kCpu), 1.0);
  EXPECT_DOUBLE_EQ(tl.busy_time(DeviceKind::kGpu), 1.5);
  const std::string ascii = tl.render_ascii(40);
  EXPECT_NE(ascii.find("GPU"), std::string::npos);
  EXPECT_NE(ascii.find("PCIe"), std::string::npos);
  const std::string csv = tl.to_csv();
  EXPECT_NE(csv.find("exec,cpu,0,a,0,1"), std::string::npos);
  EXPECT_NE(csv.find("transfer"), std::string::npos);
}

TEST(TimelineTest, EmptyTimeline) {
  Timeline tl;
  EXPECT_EQ(tl.makespan(), 0.0);
  EXPECT_EQ(tl.render_ascii(), "(empty timeline)\n");
}

}  // namespace
}  // namespace duet
