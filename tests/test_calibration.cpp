// Pins the calibrated device model to the paper's measured Table II subgraph
// costs for Wide-and-Deep (batch 1):
//
//     RNN subgraph:  2.4 ms CPU /  6.4 ms GPU
//     CNN subgraph: 14.9 ms CPU /  0.9 ms GPU
//
// If a calibration constant drifts, these tests localize the regression to
// the responsible operator class.

#include <gtest/gtest.h>

#include "device/calibration.hpp"
#include "duet/engine.hpp"
#include "models/model_zoo.hpp"

namespace duet {
namespace {

class WideDeepCalibration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new DuetEngine(models::build_wide_deep());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  // Finds the subgraph whose op histogram contains `op`.
  static const SubgraphProfile& profile_with(OpType op) {
    for (const Subgraph& sub : engine_->partition().subgraphs) {
      for (NodeId id : sub.parent_nodes) {
        if (engine_->model().node(id).op == op) {
          return engine_->report().profiles[static_cast<size_t>(sub.id)];
        }
      }
    }
    throw Error("no subgraph with requested op");
  }

  static DuetEngine* engine_;
};

DuetEngine* WideDeepCalibration::engine_ = nullptr;

TEST_F(WideDeepCalibration, RnnSubgraphCpuNearPaper) {
  EXPECT_NEAR(profile_with(OpType::kLSTM).time_on(DeviceKind::kCpu), 2.4e-3,
              0.5e-3);
}

TEST_F(WideDeepCalibration, RnnSubgraphGpuNearPaper) {
  EXPECT_NEAR(profile_with(OpType::kLSTM).time_on(DeviceKind::kGpu), 6.4e-3,
              1.3e-3);
}

TEST_F(WideDeepCalibration, CnnSubgraphCpuNearPaper) {
  EXPECT_NEAR(profile_with(OpType::kConv2d).time_on(DeviceKind::kCpu), 14.9e-3,
              3.0e-3);
}

TEST_F(WideDeepCalibration, CnnSubgraphGpuNearPaper) {
  EXPECT_NEAR(profile_with(OpType::kConv2d).time_on(DeviceKind::kGpu), 0.9e-3,
              0.35e-3);
}

TEST_F(WideDeepCalibration, PlacementMatchesPaper) {
  // RNN -> CPU, CNN -> GPU (the paper's headline placement).
  const Placement& placement = engine_->report().schedule.placement;
  for (const Subgraph& sub : engine_->partition().subgraphs) {
    for (NodeId id : sub.parent_nodes) {
      if (engine_->model().node(id).op == OpType::kLSTM) {
        EXPECT_EQ(placement.of(sub.id), DeviceKind::kCpu);
      }
      if (engine_->model().node(id).op == OpType::kConv2d) {
        EXPECT_EQ(placement.of(sub.id), DeviceKind::kGpu);
      }
    }
  }
}

TEST_F(WideDeepCalibration, HeadlineSpeedupBands) {
  const DuetReport& r = engine_->report();
  EXPECT_FALSE(r.fell_back);
  const double vs_gpu = r.est_single_gpu_s / r.est_hetero_s;
  const double vs_cpu = r.est_single_cpu_s / r.est_hetero_s;
  // Paper: 1.5-2.3x vs TVM-GPU (our simulation lands slightly above; see
  // EXPERIMENTS.md), 1.3-15.9x vs TVM-CPU across models.
  EXPECT_GT(vs_gpu, 1.5);
  EXPECT_LT(vs_gpu, 3.5);
  EXPECT_GT(vs_cpu, 1.3);
  EXPECT_LT(vs_cpu, 15.9);
}

TEST(Calibration, DeviceParamsSane) {
  const DeviceCostParams cpu = xeon_gold_6152();
  const DeviceCostParams gpu = titan_v();
  EXPECT_EQ(cpu.kind, DeviceKind::kCpu);
  EXPECT_EQ(gpu.kind, DeviceKind::kGpu);
  EXPECT_GT(gpu.peak_gflops, cpu.peak_gflops);
  EXPECT_GT(gpu.mem_bw_gbps, cpu.mem_bw_gbps);
  EXPECT_GT(gpu.launch_overhead_s, cpu.launch_overhead_s);
  EXPECT_GT(gpu.batch_gain, cpu.batch_gain);
  // RNN efficiency collapse on GPU is the paper's central observation.
  EXPECT_LT(gpu.rnn.eff, cpu.rnn.eff);
}

TEST(Calibration, NoiseAndOverheadsPositive) {
  EXPECT_GT(cpu_noise_sigma(), 0.0);
  EXPECT_GT(gpu_noise_sigma(), 0.0);
  EXPECT_GT(link_noise_sigma(), 0.0);
  EXPECT_GT(executor_dispatch_overhead(), 0.0);
  EXPECT_GT(link_spike_probability(), 0.0);
  EXPECT_LT(link_spike_probability(), 0.05);
  EXPECT_LT(link_spike_min_seconds(), link_spike_max_seconds());
}

}  // namespace
}  // namespace duet
