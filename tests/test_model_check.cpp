// Tests for the small-scope serve-protocol model checker
// (src/analysis/model_check): the correct protocol passes all four
// invariants exhaustively, each seeded-bad variant is caught under its
// expected mc-* rule, and sleep-set pruning shrinks the search without
// changing the verdict.

#include <gtest/gtest.h>

#include "analysis/model_check/explorer.hpp"

namespace duet::mc {
namespace {

bool has_rule(const VerifyResult& r, const std::string& rule) {
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == rule) return true;
  }
  return false;
}

TEST(ModelCheck, CorrectProtocolIsExhaustivelyClean) {
  // The acceptance configuration: 2 producers x 2 requests, 2 consumers,
  // queue capacity 2, 1 plan swap, plus the drain/close thread.
  const ExploreResult r = explore(ProtocolConfig{});
  EXPECT_TRUE(r.ok) << r.findings.to_string();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_TRUE(r.counterexamples.empty());
  EXPECT_EQ(r.findings.diagnostics().size(), 0u) << r.findings.to_string();
  // Sanity: this is a real interleaving space, not a trivial chain.
  EXPECT_GT(r.states_visited, 1000u) << r.summary();
  EXPECT_GT(r.max_depth_seen, 10);
}

TEST(ModelCheck, NonAtomicCounterBreaksConservation) {
  ProtocolConfig config;
  config.variant = Variant::kNonAtomicCounter;
  const ExploreResult r = explore(config);
  EXPECT_FALSE(r.ok) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_TRUE(r.findings.has_error("mc-conservation"))
      << r.findings.to_string();
  ASSERT_FALSE(r.counterexamples.empty());
  EXPECT_NE(r.counterexamples.front().find("mc-conservation"),
            std::string::npos);
}

TEST(ModelCheck, SilentDropOnFullBreaksQueueAccounting) {
  ProtocolConfig config;
  config.variant = Variant::kSilentDropOnFull;
  const ExploreResult r = explore(config);
  EXPECT_FALSE(r.ok) << r.summary();
  EXPECT_TRUE(r.findings.has_error("mc-queue-accounting"))
      << r.findings.to_string();
  EXPECT_FALSE(r.counterexamples.empty());
}

TEST(ModelCheck, MissedCloseWakeupDeadlocks) {
  ProtocolConfig config;
  config.variant = Variant::kMissedCloseWakeup;
  const ExploreResult r = explore(config);
  EXPECT_FALSE(r.ok) << r.summary();
  EXPECT_TRUE(r.findings.has_error("mc-lost-wakeup"))
      << r.findings.to_string();
  EXPECT_FALSE(r.counterexamples.empty());
}

TEST(ModelCheck, UnrefSnapshotRunsRetiredPlan) {
  ProtocolConfig config;
  config.variant = Variant::kUnrefSnapshot;
  const ExploreResult r = explore(config);
  EXPECT_FALSE(r.ok) << r.summary();
  EXPECT_TRUE(r.findings.has_error("mc-snapshot-retired"))
      << r.findings.to_string();
  EXPECT_FALSE(r.counterexamples.empty());
}

TEST(ModelCheck, FindingsCarryVariantArtifactAndContext) {
  ProtocolConfig config;
  config.variant = Variant::kSilentDropOnFull;
  const ExploreResult r = explore(config);
  ASSERT_FALSE(r.findings.diagnostics().empty());
  for (const Diagnostic& d : r.findings.diagnostics()) {
    EXPECT_EQ(d.context, "model-check") << d.to_string();
    EXPECT_NE(d.location.artifact.find("serve-protocol:"), std::string::npos)
        << d.to_string();
    EXPECT_NE(d.location.artifact.find(variant_name(config.variant)),
              std::string::npos)
        << d.to_string();
  }
}

TEST(ModelCheck, SleepSetsPruneWithoutChangingVerdict) {
  ExploreOptions with, without;
  without.sleep_sets = false;
  // Correct variant: both verdicts clean, pruned run strictly smaller.
  const ExploreResult pruned = explore(ProtocolConfig{}, with);
  const ExploreResult full = explore(ProtocolConfig{}, without);
  EXPECT_TRUE(pruned.ok && full.ok);
  EXPECT_TRUE(pruned.exhausted && full.exhausted);
  EXPECT_LT(pruned.transitions_executed, full.transitions_executed)
      << "sleep sets should prune at least one independent pair ("
      << pruned.summary() << " vs " << full.summary() << ")";
  // Bad variant: pruning must not mask the violation.
  ProtocolConfig bad;
  bad.variant = Variant::kNonAtomicCounter;
  const ExploreResult bad_pruned = explore(bad, with);
  const ExploreResult bad_full = explore(bad, without);
  EXPECT_TRUE(bad_pruned.findings.has_error("mc-conservation"));
  EXPECT_TRUE(bad_full.findings.has_error("mc-conservation"));
}

TEST(ModelCheck, DepthBoundTruncationIsReportedAsWarning) {
  ExploreOptions options;
  options.max_depth = 4;  // far below the ~25 steps a full run needs
  const ExploreResult r = explore(ProtocolConfig{}, options);
  EXPECT_FALSE(r.exhausted);
  EXPECT_TRUE(has_rule(r.findings, "mc-depth-bound"))
      << r.findings.to_string();
  EXPECT_EQ(r.findings.error_count(), 0u) << r.findings.to_string();
  EXPECT_GE(r.findings.warning_count(), 1u);
}

TEST(ModelCheck, StateBoundTruncationIsReported) {
  ExploreOptions options;
  options.max_states = 50;
  const ExploreResult r = explore(ProtocolConfig{}, options);
  EXPECT_FALSE(r.exhausted);
  EXPECT_LE(r.states_visited, 50u);
  EXPECT_TRUE(has_rule(r.findings, "mc-depth-bound"))
      << r.findings.to_string();
}

TEST(ModelCheck, ExplorationIsDeterministic) {
  const ExploreResult a = explore(ProtocolConfig{});
  const ExploreResult b = explore(ProtocolConfig{});
  EXPECT_EQ(a.states_visited, b.states_visited);
  EXPECT_EQ(a.transitions_executed, b.transitions_executed);
  EXPECT_EQ(a.max_depth_seen, b.max_depth_seen);
  EXPECT_EQ(a.summary(), b.summary());
}

TEST(ModelCheck, SmallerScopeStillExercisesSwapRetire) {
  // 1 producer / 1 consumer / 1 swap still reaches retirement; retired mask
  // must end non-zero on at least one terminal path — verified indirectly:
  // the unref variant is caught even at minimal scope.
  ProtocolConfig config;
  config.producers = 1;
  config.consumers = 1;
  config.requests_per_producer = 1;
  config.queue_capacity = 1;
  config.variant = Variant::kUnrefSnapshot;
  const ExploreResult r = explore(config);
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_TRUE(r.findings.has_error("mc-snapshot-retired"))
      << r.findings.to_string();
}

TEST(ModelCheck, VariantNamesAreDistinct) {
  EXPECT_STRNE(variant_name(Variant::kCorrect),
               variant_name(Variant::kNonAtomicCounter));
  EXPECT_STRNE(variant_name(Variant::kSilentDropOnFull),
               variant_name(Variant::kMissedCloseWakeup));
  EXPECT_STRNE(variant_name(Variant::kMissedCloseWakeup),
               variant_name(Variant::kUnrefSnapshot));
}

}  // namespace
}  // namespace duet::mc
