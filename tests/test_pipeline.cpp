// Tests for the throughput extensions: the pipelined runner, the Inception
// model, and Relay module serialization.

#include <gtest/gtest.h>

#include <cstdio>

#include "device/calibration.hpp"
#include "duet/engine.hpp"
#include "models/model_zoo.hpp"
#include "relay/serialize.hpp"
#include "runtime/pipeline.hpp"

namespace duet {
namespace {

struct PipeBench {
  Graph graph;
  DevicePair devices;
  Partition partition;

  explicit PipeBench(Graph g)
      : graph(std::move(g)),
        devices(make_default_device_pair(81)),
        partition(partition_phased(graph)) {}

  ExecutionPlan plan(const Placement& placement) const {
    return ExecutionPlan::build(graph, partition, placement, devices,
                                CompileOptions::compiler_defaults());
  }
};

TEST(Pipeline, SingleQueryMatchesSimExecutor) {
  PipeBench bench(models::build_wide_deep());
  DuetEngine engine(models::build_wide_deep());
  ExecutionPlan plan = bench.plan(engine.report().schedule.placement);

  PipelinedRunner runner(bench.devices);
  const auto r = runner.run(plan, 1, false);
  SimExecutor executor(bench.devices);
  const double single = executor.run_latency_only(plan, false);
  EXPECT_NEAR(r.makespan_s, single, single * 0.05);
  EXPECT_EQ(r.queries, 1);
}

TEST(Pipeline, CrossDeviceChainPipelines) {
  // A sequential chain nested-partitioned into chunks and placed
  // alternately: per-query latency is the sum of both stages, but the
  // pipeline sustains one query per max(stage) — classic software
  // pipelining. (Wide-and-Deep itself gains no extra throughput from
  // pipelining: its bottleneck device is already 100% busy within one
  // query, which PipelinedRunner must — and does — respect.)
  GraphBuilder b("pipe-chain");
  NodeId x = b.input(Shape{1, 512});
  for (int i = 0; i < 8; ++i) x = b.dense(x, 512);
  Graph g = b.finish({x});

  DevicePair devices = make_default_device_pair(82);
  PartitionOptions po;
  po.granularity = PartitionOptions::Granularity::kNested;
  po.nested_max_nodes = 4;
  Partition partition = partition_phased(g, po);
  ASSERT_GE(partition.subgraphs.size(), 2u);
  Placement placement(partition.subgraphs.size());
  for (size_t i = 0; i < placement.size(); ++i) {
    placement.set(static_cast<int>(i),
                  i % 2 ? DeviceKind::kGpu : DeviceKind::kCpu);
  }
  ExecutionPlan plan = ExecutionPlan::build(g, partition, placement, devices,
                                            CompileOptions::compiler_defaults());
  PipelinedRunner runner(devices);
  const auto one = runner.run(plan, 1, false);
  const auto many = runner.run(plan, 64, false);
  EXPECT_GT(many.throughput_qps, (1.0 / one.makespan_s) * 1.4);
  // And can never beat the bottleneck-device bound.
  EXPECT_LE(many.throughput_qps, 1.0 / many.bottleneck_busy_s * 1.05);
}

TEST(Pipeline, DuetPlacementOutperformsGpuOnlyThroughput) {
  PipeBench bench(models::build_wide_deep());
  DuetEngine engine(models::build_wide_deep());
  ExecutionPlan duet_plan = bench.plan(engine.report().schedule.placement);
  ExecutionPlan gpu_plan =
      bench.plan(Placement(bench.partition.subgraphs.size(), DeviceKind::kGpu));

  PipelinedRunner runner(bench.devices);
  const auto d = runner.run(duet_plan, 32, false);
  const auto g = runner.run(gpu_plan, 32, false);
  EXPECT_GT(d.throughput_qps, g.throughput_qps);
}

TEST(Pipeline, LatenciesMonotoneInQueueDepth) {
  PipeBench bench(models::build_siamese());
  ExecutionPlan plan =
      bench.plan(Placement(bench.partition.subgraphs.size(), DeviceKind::kCpu));
  PipelinedRunner runner(bench.devices);
  const auto r = runner.run(plan, 8, false);
  ASSERT_EQ(r.query_latency_s.size(), 8u);
  for (size_t q = 1; q < 8; ++q) {
    EXPECT_GE(r.query_latency_s[q], r.query_latency_s[q - 1] - 1e-12)
        << "FIFO single-device queue must complete in order";
  }
}

// --- inception ---------------------------------------------------------------------

TEST(Inception, NineMultiPathModules) {
  Graph g = models::build_inception(models::InceptionConfig::tiny());
  Partition p = partition_phased(g);
  int multipath = 0;
  for (const Phase& phase : p.phases) {
    if (phase.type == PhaseType::kMultiPath) {
      ++multipath;
      EXPECT_EQ(phase.subgraphs.size(), 4u);  // the four inception branches
    }
  }
  EXPECT_EQ(multipath, 9);
}

TEST(Inception, ForwardIsDistribution) {
  Graph g = models::build_inception(models::InceptionConfig::tiny());
  Rng rng(1);
  const auto out = evaluate_graph(g, models::make_random_feeds(g, rng));
  float sum = 0.0f;
  for (int64_t i = 0; i < out[0].numel(); ++i) sum += out[0].data<float>()[i];
  EXPECT_NEAR(sum, 1.0f, 1e-4);
}

TEST(Inception, FullSizeFallsBackToGpu) {
  // Branches are all small GPU-friendly convs: splitting them across PCIe
  // cannot win, so DUET must fall back even though parallelism exists.
  DuetEngine engine(models::build_inception());
  EXPECT_TRUE(engine.report().fell_back);
  EXPECT_EQ(engine.report().fallback_device, DeviceKind::kGpu);
}

// --- relay serialization -------------------------------------------------------------

TEST(RelaySerialize, RoundTripWithWeights) {
  Graph g = models::build_siamese(models::SiameseConfig::tiny(), 123);
  const std::string path = ::testing::TempDir() + "duet_siamese.relay";
  relay::save_module(relay::from_graph(g), path);

  Graph loaded = relay::to_graph(relay::load_module(path));
  ASSERT_EQ(loaded.num_nodes(), g.num_nodes());

  Rng rng(2);
  const auto feeds = models::make_random_feeds(g, rng);
  std::map<NodeId, Tensor> feeds2;
  const auto in1 = g.input_ids();
  const auto in2 = loaded.input_ids();
  for (size_t i = 0; i < in1.size(); ++i) feeds2[in2[i]] = feeds.at(in1[i]);
  const auto a = evaluate_graph(g, feeds);
  const auto b = evaluate_graph(loaded, feeds2);
  // Weights round-tripped bit-exact, so outputs are identical.
  EXPECT_EQ(Tensor::max_abs_diff(a[0], b[0]), 0.0f);

  std::remove(path.c_str());
  std::remove((path + ".weights").c_str());
}

TEST(RelaySerialize, MissingSidecarLoadsZeros) {
  Graph g = models::build_siamese(models::SiameseConfig::tiny());
  const std::string path = ::testing::TempDir() + "duet_nosidecar.relay";
  relay::save_module(relay::from_graph(g), path);
  std::remove((path + ".weights").c_str());
  Graph loaded = relay::to_graph(relay::load_module(path));
  // Structure intact; constants zeroed.
  EXPECT_EQ(loaded.num_nodes(), g.num_nodes());
  for (NodeId id : loaded.constant_ids()) {
    const Tensor& t = loaded.node(id).value;
    if (t.dtype() != DType::kFloat32) continue;
    for (int64_t i = 0; i < t.numel(); ++i) {
      ASSERT_EQ(t.data<float>()[i], 0.0f);
    }
  }
  std::remove(path.c_str());
}

TEST(RelaySerialize, BadPathThrows) {
  EXPECT_THROW(relay::load_module("/nonexistent/dir/x.relay"), Error);
  Graph g = models::build_siamese(models::SiameseConfig::tiny());
  EXPECT_THROW(relay::save_module(relay::from_graph(g), "/nonexistent/dir/x.relay"),
               Error);
}

}  // namespace
}  // namespace duet
