// Tests for the content-addressed caches: fingerprint discrimination and
// canonicalization, the transparent CompileCache inside compile_for_device,
// the disk-backed ProfileCache (round trip + calibration invalidation), the
// profiler's once-per-equivalence-class compile guarantee, and the engine-
// level guarantees (bit-identical outputs cache on/off, warm runs skip
// profiling entirely).

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <set>

#include "compiler/compile_cache.hpp"
#include "duet/duet.hpp"
#include "graph/builder.hpp"
#include "graph/fingerprint.hpp"
#include "profile/profile_cache.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace duet {
namespace {

// The caches are process-wide singletons shared by every test in this
// binary: start each test from a clean, enabled, memory-only state.
class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProfileCache::instance().close_disk();
    ProfileCache::instance().clear();
    ProfileCache::instance().reset_stats();
    ProfileCache::instance().set_enabled(true);
    CompileCache::instance().clear();
    CompileCache::instance().reset_stats();
    CompileCache::instance().set_enabled(true);
  }
  void TearDown() override { SetUp(); }
};

// --- fingerprint discrimination -------------------------------------------------

// A small MLP with a weight, so both structure and constant payloads exist.
Graph mlp(const std::string& prefix, uint64_t seed = 42, int64_t width = 32,
          int64_t units = 8) {
  GraphBuilder b(prefix + "-mlp", seed);
  const NodeId x = b.input(Shape{1, width}, prefix + ".x");
  const NodeId h = b.dense(x, units, "relu", prefix + ".fc1");
  return b.finish({b.dense(h, 4, "", prefix + ".fc2")});
}

TEST(Fingerprint, DeterministicAcrossBuilds) {
  const GraphFingerprint a = fingerprint_graph(mlp("m"));
  const GraphFingerprint b = fingerprint_graph(mlp("m"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(fingerprint_names(mlp("m")), fingerprint_names(mlp("m")));
}

TEST(Fingerprint, RenamingChangesNeitherStructureNorValues) {
  const Graph a = mlp("alpha");
  const Graph b = mlp("beta");
  EXPECT_EQ(fingerprint_graph(a).structural, fingerprint_graph(b).structural);
  EXPECT_EQ(fingerprint_graph(a).values, fingerprint_graph(b).values);
  // ...but the name hash (the compile cache's extra key component) differs.
  EXPECT_NE(fingerprint_names(a), fingerprint_names(b));
}

TEST(Fingerprint, ConstantPayloadFlipsValuesOnly) {
  // Same architecture, different weight init: one structural class, two
  // distinct numeric artifacts.
  const GraphFingerprint a = fingerprint_graph(mlp("m", /*seed=*/1));
  const GraphFingerprint b = fingerprint_graph(mlp("m", /*seed=*/2));
  EXPECT_EQ(a.structural, b.structural);
  EXPECT_NE(a.values, b.values);
}

TEST(Fingerprint, ShapePerturbationChangesStructural) {
  EXPECT_NE(fingerprint_graph(mlp("m", 42, /*width=*/32)).structural,
            fingerprint_graph(mlp("m", 42, /*width=*/33)).structural);
  EXPECT_NE(fingerprint_graph(mlp("m", 42, 32, /*units=*/8)).structural,
            fingerprint_graph(mlp("m", 42, 32, /*units=*/9)).structural);
}

TEST(Fingerprint, AttrPerturbationChangesStructural) {
  // slice_rows(0,2) vs slice_rows(1,3): identical ops, shapes and dtypes —
  // only the begin/end attributes differ.
  const auto sliced = [](int64_t begin) {
    GraphBuilder b("slice");
    const NodeId x = b.input(Shape{4, 16}, "x");
    return b.finish({b.slice_rows(x, begin, begin + 2)});
  };
  const Graph a = sliced(0);
  const Graph c = sliced(1);
  ASSERT_EQ(a.node(a.outputs()[0]).out_shape, c.node(c.outputs()[0]).out_shape);
  EXPECT_NE(fingerprint_graph(a).structural, fingerprint_graph(c).structural);
}

TEST(Fingerprint, DtypePerturbationChangesStructural) {
  const auto typed = [](DType dtype) {
    GraphBuilder b("typed");
    const NodeId x = b.input(Shape{1, 16}, "x", dtype);
    return b.finish({b.relu(x)});
  };
  EXPECT_NE(fingerprint_graph(typed(DType::kFloat32)).structural,
            fingerprint_graph(typed(DType::kInt32)).structural);
}

TEST(Fingerprint, TopologyPerturbationChangesStructural) {
  // add(a, mul(a, b)) vs add(b, mul(a, b)): same node multiset, one edge
  // rewired. And add(x, x) vs add(x, y): positional input hashing.
  const auto rewired = [](bool to_b) {
    GraphBuilder b("rewired");
    const NodeId a = b.input(Shape{1, 8}, "a");
    const NodeId c = b.input(Shape{1, 8}, "b");
    const NodeId m = b.mul(a, c);
    return b.finish({b.add(to_b ? c : a, m)});
  };
  EXPECT_NE(fingerprint_graph(rewired(false)).structural,
            fingerprint_graph(rewired(true)).structural);

  const auto fanin = [](bool same) {
    GraphBuilder b("fanin");
    const NodeId x = b.input(Shape{1, 8}, "x");
    const NodeId y = b.input(Shape{1, 8}, "y");
    return b.finish({b.add(x, same ? x : y), b.relu(y)});
  };
  EXPECT_NE(fingerprint_graph(fanin(true)).structural,
            fingerprint_graph(fanin(false)).structural);
}

TEST(Fingerprint, InsertionOrderDoesNotMatter) {
  // The same two-branch computation built left-first and right-first: node
  // ids and stored order differ, the computation does not.
  const auto branches = [](bool left_first) {
    GraphBuilder b("branches");
    const NodeId x = b.input(Shape{1, 8}, "x");
    const NodeId y = b.input(Shape{1, 8}, "y");
    NodeId left = -1;
    NodeId right = -1;
    if (left_first) {
      left = b.relu(x);
      right = b.tanh(y);
    } else {
      right = b.tanh(y);
      left = b.relu(x);
    }
    return b.finish({b.add(left, right)});
  };
  const GraphFingerprint a = fingerprint_graph(branches(true));
  const GraphFingerprint b = fingerprint_graph(branches(false));
  EXPECT_EQ(a.structural, b.structural);
  EXPECT_EQ(a.values, b.values);
}

// --- CompileCache ----------------------------------------------------------------

TEST_F(CacheTest, CompileForDeviceHitsOnRecompile) {
  const Graph g = mlp("cc");
  DevicePair devices = make_default_device_pair(3);
  const CompileOptions options = CompileOptions::compiler_defaults();

  const CompiledSubgraph first =
      compile_for_device(g, DeviceKind::kCpu, options, devices.cpu->params());
  CompileCache::Stats s = CompileCache::instance().stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);

  const CompiledSubgraph second =
      compile_for_device(g, DeviceKind::kCpu, options, devices.cpu->params());
  s = CompileCache::instance().stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(first.graph().num_nodes(), second.graph().num_nodes());

  // The other device is a distinct artifact.
  compile_for_device(g, DeviceKind::kGpu, options, devices.gpu->params());
  s = CompileCache::instance().stats();
  EXPECT_EQ(s.misses, 2u);
}

TEST_F(CacheTest, RenamedTwinMissesCompileCacheButSharesProfileKey) {
  // Renamed twins: same structural class (one profile) but distinct compile
  // artifacts (the plan matches feeds by input name).
  const Graph a = mlp("one");
  const Graph b = mlp("two");
  DevicePair devices = make_default_device_pair(3);
  const CompileOptions options = CompileOptions::compiler_defaults();

  compile_for_device(a, DeviceKind::kCpu, options, devices.cpu->params());
  compile_for_device(b, DeviceKind::kCpu, options, devices.cpu->params());
  const CompileCache::Stats s = CompileCache::instance().stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 0u);

  ProfileOptions popts;
  EXPECT_EQ(profile_stats_key(fingerprint_graph(a), DeviceKind::kCpu, popts,
                              devices.cpu->params(), devices.cpu->noise_sigma()),
            profile_stats_key(fingerprint_graph(b), DeviceKind::kCpu, popts,
                              devices.cpu->params(), devices.cpu->noise_sigma()));
}

TEST_F(CacheTest, ScheduleQualityHookBypassesCache) {
  const Graph g = mlp("hook");
  DevicePair devices = make_default_device_pair(3);
  CompileOptions options = CompileOptions::compiler_defaults();
  options.schedule_quality = [](const Node&, int) { return 1.0; };
  EXPECT_EQ(compile_options_key(options), kUncacheableOptionsKey);

  compile_for_device(g, DeviceKind::kCpu, options, devices.cpu->params());
  compile_for_device(g, DeviceKind::kCpu, options, devices.cpu->params());
  const CompileCache::Stats s = CompileCache::instance().stats();
  EXPECT_EQ(s.bypasses, 2u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.entries, 0u);
}

// --- ProfileCache disk persistence ----------------------------------------------

TEST_F(CacheTest, DiskRoundTripAndCalibrationInvalidation) {
  const std::string dir = ::testing::TempDir() + "/duet-cache-test";
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/profile_cache.v1.txt";
  ProfileCache& pc = ProfileCache::instance();

  EXPECT_EQ(pc.open_disk(path, 0xAAu), 0u);  // nothing on disk yet
  SummaryStats s;
  s.count = 500;
  s.mean = 1.2500000000000001e-3;
  s.stddev = 3.0517578125e-5;
  s.min = 1.1e-3;
  s.max = 1.9e-3;
  s.p50 = 1.24e-3;
  s.p90 = 1.5e-3;
  s.p99 = 1.7e-3;
  s.p999 = 1.89e-3;
  pc.insert(0x1234u, s);
  pc.flush();

  // Same calibration: full-precision round trip.
  pc.clear();
  EXPECT_EQ(pc.open_disk(path, 0xAAu), 1u);
  SummaryStats out;
  ASSERT_TRUE(pc.lookup(0x1234u, &out));
  EXPECT_EQ(out.count, s.count);
  EXPECT_EQ(out.mean, s.mean);
  EXPECT_EQ(out.stddev, s.stddev);
  EXPECT_EQ(out.min, s.min);
  EXPECT_EQ(out.max, s.max);
  EXPECT_EQ(out.p50, s.p50);
  EXPECT_EQ(out.p90, s.p90);
  EXPECT_EQ(out.p99, s.p99);
  EXPECT_EQ(out.p999, s.p999);

  // Different calibration: the file is ignored (recalibration invalidates
  // every persisted profile) and the next flush rewrites it.
  pc.clear();
  EXPECT_EQ(pc.open_disk(path, 0xBBu), 0u);
  pc.flush();
  pc.clear();
  EXPECT_EQ(pc.open_disk(path, 0xAAu), 0u);
  pc.close_disk();
  std::filesystem::remove_all(dir);
}

// --- profiler: once per structural equivalence class -----------------------------

TEST_F(CacheTest, ColdRunCompilesOncePerClassWarmRunHitsEverything) {
  telemetry::ScopedTelemetry on(true);
  telemetry::MetricsRegistry::instance().reset();

  // Siamese: the two branch subgraphs are structurally identical (different
  // weights, different names) — a genuine duplicate class.
  const Graph model = models::build_siamese(models::SiameseConfig::tiny());
  const Partition partition = partition_phased(model);
  const size_t n = partition.subgraphs.size();

  std::set<uint64_t> classes;
  for (const Subgraph& sub : partition.subgraphs) {
    classes.insert(fingerprint_graph(sub.graph).structural);
  }
  ASSERT_LT(classes.size(), n) << "fixture must contain duplicate classes";

  DevicePair devices = make_default_device_pair(3);
  Profiler profiler(devices);
  ProfileOptions opts;
  opts.runs = 3;
  opts.with_noise = false;

  const auto profiles = profiler.profile_partition(partition, model, opts);
  ProfileCache::Stats s = ProfileCache::instance().stats();
  EXPECT_EQ(s.misses, classes.size() * 2);  // one lookup per class per device
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(telemetry::counter("profile.compiles").value(), classes.size() * 2);

  // Duplicate members carry the representative's statistics.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (fingerprint_graph(partition.subgraphs[i].graph).structural !=
          fingerprint_graph(partition.subgraphs[j].graph).structural) {
        continue;
      }
      EXPECT_EQ(profiles[i].time_on(DeviceKind::kCpu),
                profiles[j].time_on(DeviceKind::kCpu));
      EXPECT_EQ(profiles[i].time_on(DeviceKind::kGpu),
                profiles[j].time_on(DeviceKind::kGpu));
    }
  }

  // Warm re-profile: zero compiles, 100% hit rate, identical stats.
  ProfileCache::instance().reset_stats();
  const uint64_t compiles_before = telemetry::counter("profile.compiles").value();
  const auto warm = profiler.profile_partition(partition, model, opts);
  s = ProfileCache::instance().stats();
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.hits, classes.size() * 2);
  EXPECT_EQ(telemetry::counter("profile.compiles").value(), compiles_before);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(warm[i].time_on(DeviceKind::kCpu),
              profiles[i].time_on(DeviceKind::kCpu));
    EXPECT_EQ(warm[i].time_on(DeviceKind::kGpu),
              profiles[i].time_on(DeviceKind::kGpu));
  }
}

TEST_F(CacheTest, DisabledCacheTakesLegacyPath) {
  ProfileCache::instance().set_enabled(false);
  const Graph model = models::build_siamese(models::SiameseConfig::tiny());
  const Partition partition = partition_phased(model);
  DevicePair devices = make_default_device_pair(3);
  Profiler profiler(devices);
  ProfileOptions opts;
  opts.runs = 2;
  opts.with_noise = false;
  const auto profiles = profiler.profile_partition(partition, model, opts);
  EXPECT_EQ(profiles.size(), partition.subgraphs.size());
  // No cache traffic at all.
  const ProfileCache::Stats s = ProfileCache::instance().stats();
  EXPECT_EQ(s.hits + s.misses, 0u);
  for (const SubgraphProfile& p : profiles) {
    EXPECT_GT(p.time_on(DeviceKind::kCpu), 0.0);
    EXPECT_GT(p.time_on(DeviceKind::kGpu), 0.0);
  }
}

// --- engine-level guarantees ----------------------------------------------------

TEST_F(CacheTest, EngineOutputsBitIdenticalCacheOnOff) {
  const auto run = [](bool caches_on) {
    ProfileCache::instance().clear();
    ProfileCache::instance().set_enabled(caches_on);
    CompileCache::instance().clear();
    CompileCache::instance().set_enabled(caches_on);
    DuetOptions opts;
    opts.seed = 5;
    DuetEngine engine(models::build_wide_deep(models::WideDeepConfig::tiny()),
                      opts);
    Rng rng(9);
    const auto feeds = models::make_random_feeds(engine.model(), rng);
    return engine.infer(feeds).outputs;
  };
  const std::vector<Tensor> with_cache = run(true);
  const std::vector<Tensor> without_cache = run(false);
  ASSERT_EQ(with_cache.size(), without_cache.size());
  ASSERT_FALSE(with_cache.empty());
  for (size_t i = 0; i < with_cache.size(); ++i) {
    ASSERT_EQ(with_cache[i].byte_size(), without_cache[i].byte_size());
    EXPECT_EQ(std::memcmp(with_cache[i].raw_data(), without_cache[i].raw_data(),
                          with_cache[i].byte_size()),
              0)
        << "output " << i << " differs between cached and uncached runs";
  }
}

TEST_F(CacheTest, WarmDiskCacheSkipsProfilingInANewProcess) {
  const std::string dir = ::testing::TempDir() + "/duet-warm-engine";
  std::filesystem::remove_all(dir);
  DuetOptions opts;
  opts.profile_cache_dir = dir;

  // Cold run: populates and flushes the disk cache.
  DuetEngine cold(models::build_wide_deep(models::WideDeepConfig::tiny()), opts);
  ASSERT_GT(ProfileCache::instance().stats().misses, 0u);

  // Simulate a fresh process: drop the in-memory map, keep the disk file.
  ProfileCache::instance().close_disk();
  ProfileCache::instance().clear();
  ProfileCache::instance().reset_stats();

  DuetEngine warm(models::build_wide_deep(models::WideDeepConfig::tiny()), opts);
  const ProfileCache::Stats s = ProfileCache::instance().stats();
  EXPECT_EQ(s.misses, 0u) << "warm run must not re-profile anything";
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.disk_loaded, 0u);

  // Same profiles, same decisions, same estimate.
  EXPECT_EQ(cold.report().schedule.placement, warm.report().schedule.placement);
  EXPECT_EQ(cold.report().est_hetero_s, warm.report().est_hetero_s);
  ProfileCache::instance().close_disk();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace duet
