// Tests for the graph-level compiler passes: each pass's specific rewrite,
// and the property that the full pipeline preserves semantics on every zoo
// model (optimized graph computes the same outputs).

#include <gtest/gtest.h>

#include "compiler/lowering.hpp"
#include "compiler/pass.hpp"
#include "device/calibration.hpp"
#include "graph/builder.hpp"
#include "models/model_zoo.hpp"

namespace duet {
namespace {

int count_ops(const Graph& g, OpType op) {
  int n = 0;
  for (const Node& node : g.nodes()) n += node.op == op;
  return n;
}

// --- fusion -----------------------------------------------------------------------

TEST(Fusion, DenseReluBecomesEpilogue) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 4});
  const NodeId d = b.dense(x, 8);
  const NodeId r = b.relu(d);
  Graph g = b.finish({r});

  Graph fused = fuse_operators(g);
  EXPECT_EQ(count_ops(fused, OpType::kReLU), 0);
  bool found = false;
  for (const Node& n : fused.nodes()) {
    if (n.op == OpType::kDense) {
      EXPECT_EQ(n.attrs.get_string_or("epilogue", ""), "relu");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Fusion, CascadedEpilogues) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 4});
  const NodeId d = b.dense(x, 8, "relu");  // built-in epilogue
  const NodeId t = b.tanh(d);
  Graph g = b.finish({t});
  Graph fused = fuse_operators(g);
  for (const Node& n : fused.nodes()) {
    if (n.op == OpType::kDense) {
      EXPECT_EQ(n.attrs.get_string_or("epilogue", ""), "relu,tanh");
    }
  }
  EXPECT_EQ(count_ops(fused, OpType::kTanh), 0);
}

TEST(Fusion, MultiConsumerBlocksFusion) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 4});
  const NodeId d = b.dense(x, 8);
  const NodeId r = b.relu(d);
  const NodeId s = b.sigmoid(d);  // second consumer of the dense value
  const NodeId out = b.add(r, s);
  Graph g = b.finish({out});
  Graph fused = fuse_operators(g);
  // dense must stay unfused; relu and sigmoid survive.
  EXPECT_EQ(count_ops(fused, OpType::kReLU), 1);
  EXPECT_EQ(count_ops(fused, OpType::kSigmoid), 1);
}

TEST(Fusion, OutputValueNotFusedAway) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 4});
  const NodeId d = b.dense(x, 8);
  const NodeId r = b.relu(d);
  Graph g = b.finish({d, r});  // the dense value itself escapes

  Graph fused = fuse_operators(g);
  EXPECT_EQ(count_ops(fused, OpType::kReLU), 1);

  // Semantics: both outputs still correct.
  Rng rng(1);
  const auto feeds = models::make_random_feeds(g, rng);
  const auto before = evaluate_graph(g, feeds);
  const auto after = evaluate_graph(fused, feeds);
  EXPECT_TRUE(Tensor::allclose(before[0], after[0]));
  EXPECT_TRUE(Tensor::allclose(before[1], after[1]));
}

TEST(Fusion, UnaryChainCollapses) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 4});
  const NodeId a = b.relu(x);
  const NodeId c = b.tanh(a);
  const NodeId d = b.sigmoid(c);
  Graph g = b.finish({d});
  Graph fused = fuse_operators(g);
  EXPECT_EQ(count_ops(fused, OpType::kElementwiseChain), 1);
  for (const Node& n : fused.nodes()) {
    if (n.op == OpType::kElementwiseChain) {
      EXPECT_EQ(n.attrs.get_string("chain"), "relu,tanh,sigmoid");
    }
  }
}

// --- constant folding ------------------------------------------------------------

TEST(ConstantFold, FoldsConstantSubtree) {
  GraphBuilder b("t");
  const NodeId c1 = b.constant(Tensor::full(Shape{2, 2}, 2.0f));
  const NodeId c2 = b.constant(Tensor::full(Shape{2, 2}, 3.0f));
  const NodeId prod = b.mul(c1, c2);
  const NodeId x = b.input(Shape{2, 2});
  const NodeId out = b.add(x, prod);
  Graph g = b.finish({out});

  Graph folded = fold_constants(g);
  EXPECT_EQ(count_ops(folded, OpType::kMul), 0);
  // The folded constant carries the right value.
  bool found = false;
  for (const Node& n : folded.nodes()) {
    if (n.is_constant() && n.name.find(".folded") != std::string::npos) {
      EXPECT_EQ(n.value.data<float>()[0], 6.0f);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ConstantFold, LeavesDynamicNodes) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 2});
  const NodeId r = b.relu(x);
  Graph g = b.finish({r});
  Graph folded = fold_constants(g);
  EXPECT_EQ(count_ops(folded, OpType::kReLU), 1);
}

// --- batch norm folding ------------------------------------------------------------

TEST(FoldBatchNorm, ConvBnCollapsesAndMatchesNumerically) {
  GraphBuilder b("t", 5);
  const NodeId x = b.input(Shape{1, 3, 8, 8});
  const NodeId c = b.conv2d(x, 4, 3, 1, 1, "c");
  // Non-trivial scale/shift.
  Graph& g0 = b.graph();
  const NodeId scale = b.constant(Tensor::from_vector(Shape{4}, {1, 2, 0.5, -1}));
  const NodeId shift = b.constant(Tensor::from_vector(Shape{4}, {0, 1, -1, 2}));
  const NodeId bn = g0.add_node(OpType::kBatchNorm, {c, scale, shift});
  Graph g = b.finish({bn});

  Graph folded = fold_batch_norm(g);
  EXPECT_EQ(count_ops(folded, OpType::kBatchNorm), 0);
  EXPECT_EQ(count_ops(folded, OpType::kConv2d), 1);

  Rng rng(2);
  const auto feeds = models::make_random_feeds(g, rng);
  const auto before = evaluate_graph(g, feeds);
  const auto after = evaluate_graph(folded, feeds);
  EXPECT_TRUE(Tensor::allclose(before[0], after[0], 1e-3f, 1e-4f))
      << Tensor::max_abs_diff(before[0], after[0]);
}

TEST(FoldBatchNorm, SharedConvNotFolded) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 2, 4, 4});
  const NodeId c = b.conv2d(x, 2, 1, 1, 0);
  const NodeId bn = b.batch_norm(c);
  const NodeId extra = b.relu(c);  // conv value also used raw
  const NodeId gap1 = b.global_avg_pool(bn);
  const NodeId gap2 = b.global_avg_pool(extra);
  const NodeId out = b.add(gap1, gap2);
  Graph g = b.finish({out});
  Graph folded = fold_batch_norm(g);
  EXPECT_EQ(count_ops(folded, OpType::kBatchNorm), 1);
}

// --- CSE / DCE -------------------------------------------------------------------

TEST(Cse, MergesIdenticalNodes) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 4});
  const NodeId r1 = b.relu(x);
  const NodeId r2 = b.relu(x);
  const NodeId out = b.add(r1, r2);
  Graph g = b.finish({out});
  Graph cse = eliminate_common_subexpressions(g);
  EXPECT_EQ(count_ops(cse, OpType::kReLU), 1);

  Rng rng(3);
  const auto feeds = models::make_random_feeds(g, rng);
  EXPECT_TRUE(
      Tensor::allclose(evaluate_graph(g, feeds)[0], evaluate_graph(cse, feeds)[0]));
}

TEST(Cse, DifferentAttrsNotMerged) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 4});
  const NodeId s1 = b.slice_rows(x, 0, 1);
  const NodeId s2 = b.slice_rows(x, 1, 2);
  const NodeId out = b.add(s1, s2);
  Graph g = b.finish({out});
  Graph cse = eliminate_common_subexpressions(g);
  EXPECT_EQ(count_ops(cse, OpType::kSliceRows), 2);
}

TEST(Dce, RemovesDeadComputeKeepsInputs) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 4});
  const NodeId unused_input = b.input(Shape{1, 4});
  (void)unused_input;
  const NodeId live = b.relu(x);
  const NodeId dead = b.sigmoid(x);
  (void)dead;
  Graph g = b.finish({live});
  Graph dce = eliminate_dead_code(g);
  EXPECT_EQ(count_ops(dce, OpType::kSigmoid), 0);
  EXPECT_EQ(dce.input_ids().size(), 2u);  // signature preserved
}

// --- shape-op simplification --------------------------------------------------------

TEST(SimplifyShapeOps, RemovesIdentity) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 4});
  const NodeId i = b.graph().add_node(OpType::kIdentity, {x});
  const NodeId r = b.relu(i);
  Graph g = b.finish({r});
  Graph s = simplify_shape_ops(g);
  EXPECT_EQ(count_ops(s, OpType::kIdentity), 0);
  Rng rng(4);
  const auto feeds = models::make_random_feeds(g, rng);
  EXPECT_TRUE(Tensor::allclose(evaluate_graph(g, feeds)[0],
                               evaluate_graph(s, feeds)[0]));
}

TEST(SimplifyShapeOps, CollapsesReshapeChain) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 12});
  const NodeId r1 = b.reshape(x, Shape{4, 6});
  const NodeId r2 = b.reshape(r1, Shape{24});
  const NodeId r3 = b.reshape(r2, Shape{3, 8});
  const NodeId y = b.relu(r3);
  Graph g = b.finish({y});
  Graph s = simplify_shape_ops(g);
  EXPECT_EQ(count_ops(s, OpType::kReshape), 3);  // dead originals remain...
  Graph after_dce = eliminate_dead_code(s);
  EXPECT_EQ(count_ops(after_dce, OpType::kReshape), 1);  // ...one survives DCE

  Rng rng(5);
  const auto feeds = models::make_random_feeds(g, rng);
  EXPECT_TRUE(Tensor::allclose(evaluate_graph(g, feeds)[0],
                               evaluate_graph(s, feeds)[0]));
}

TEST(SimplifyShapeOps, DropsNoopReshape) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 3});
  const NodeId r = b.reshape(x, Shape{2, 3});  // same shape
  const NodeId y = b.relu(r);
  Graph g = b.finish({y});
  Graph s = eliminate_dead_code(simplify_shape_ops(g));
  EXPECT_EQ(count_ops(s, OpType::kReshape), 0);
}

TEST(SimplifyShapeOps, PreservedWhenShapeMatters) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 12});
  const NodeId r = b.reshape(x, Shape{4, 6});
  const NodeId d = b.dense(r, 5);  // consumes the reshaped geometry
  Graph g = b.finish({d});
  Graph s = eliminate_dead_code(simplify_shape_ops(g));
  EXPECT_EQ(count_ops(s, OpType::kReshape), 1);
}

// --- layout ------------------------------------------------------------------------

TEST(Layout, TagsConvs) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 3, 8, 8});
  const NodeId c = b.conv2d(x, 4, 3, 1, 1);
  Graph g = b.finish({c});
  Graph tagged = transform_layout(g);
  for (const Node& n : tagged.nodes()) {
    if (n.op == OpType::kConv2d) {
      EXPECT_EQ(n.attrs.get_string("layout"), "NCHWc");
    }
  }
}

// --- full pipeline semantics (property over the zoo) -------------------------------

class PipelineSemantics : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineSemantics, OptimizedGraphComputesSameOutputs) {
  Graph g = [&] {
    const std::string name = GetParam();
    if (name == "wide-deep")
      return models::build_wide_deep(models::WideDeepConfig::tiny());
    if (name == "siamese")
      return models::build_siamese(models::SiameseConfig::tiny());
    if (name == "mtdnn") return models::build_mtdnn(models::MtDnnConfig::tiny());
    if (name == "resnet") return models::build_resnet(models::ResNetConfig::tiny());
    if (name == "squeezenet")
      return models::build_squeezenet(models::SqueezeNetConfig::tiny());
    return models::build_vgg16(models::VggConfig::tiny());
  }();

  Graph optimized = PassManager::standard(CompileOptions::compiler_defaults()).run(g);
  // Passes never grow the graph (tiny MT-DNN has no fusible pattern, so
  // equality is possible; conv models must shrink — asserted below).
  EXPECT_LE(optimized.num_nodes(), g.num_nodes());
  if (std::string(GetParam()) != "mtdnn") {
    EXPECT_LT(optimized.num_nodes(), g.num_nodes());
  }

  Rng rng(7);
  const auto feeds = models::make_random_feeds(g, rng);
  // Input ids can differ; remap positionally.
  const auto src_inputs = g.input_ids();
  const auto dst_inputs = optimized.input_ids();
  ASSERT_EQ(src_inputs.size(), dst_inputs.size());
  std::map<NodeId, Tensor> remapped;
  for (size_t i = 0; i < src_inputs.size(); ++i) {
    remapped[dst_inputs[i]] = feeds.at(src_inputs[i]);
  }

  const auto before = evaluate_graph(g, feeds);
  const auto after = evaluate_graph(optimized, remapped);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(Tensor::allclose(before[i], after[i], 1e-3f, 1e-4f))
        << "output " << i
        << " max diff=" << Tensor::max_abs_diff(before[i], after[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, PipelineSemantics,
                         ::testing::Values("wide-deep", "siamese", "mtdnn",
                                           "resnet", "squeezenet", "vgg"));

// --- lowering -----------------------------------------------------------------------

TEST(Lowering, CompiledSubgraphCarriesCosts) {
  Graph g = models::build_wide_deep(models::WideDeepConfig::tiny());
  const CompiledSubgraph cs = compile_for_device(
      g, DeviceKind::kCpu, CompileOptions::compiler_defaults(), xeon_gold_6152());
  EXPECT_GT(cs.kernels().size(), 0u);
  EXPECT_GT(cs.est_total_time_s(), 0.0);
  for (const CompiledKernel& k : cs.kernels()) {
    EXPECT_GE(k.est_time_s, 0.0);
    EXPECT_GE(k.launches, 0);
  }
  EXPECT_GT(cs.input_bytes(), 0u);
  EXPECT_GT(cs.output_bytes(), 0u);
}

TEST(Lowering, WrongDeviceParamsThrow) {
  Graph g = models::build_siamese(models::SiameseConfig::tiny());
  EXPECT_THROW(compile_for_device(g, DeviceKind::kGpu,
                                  CompileOptions::compiler_defaults(),
                                  xeon_gold_6152()),
               Error);
}

TEST(Lowering, FrameworkModeSkipsFusion) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 4});
  const NodeId d = b.dense(x, 8);
  const NodeId r = b.relu(d);
  Graph g = b.finish({r});
  const CompiledSubgraph framework = compile_for_device(
      g, DeviceKind::kCpu, CompileOptions::framework(), xeon_gold_6152());
  const CompiledSubgraph compiled = compile_for_device(
      g, DeviceKind::kCpu, CompileOptions::compiler_defaults(), xeon_gold_6152());
  EXPECT_GT(framework.kernels().size(), compiled.kernels().size());
  EXPECT_GT(framework.est_total_time_s(), compiled.est_total_time_s());
}

}  // namespace
}  // namespace duet
