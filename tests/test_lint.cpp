// Tests for the unified lint framework (src/analysis/lint): one seeded
// corruption per lint rule (mirroring test_verifier.cpp's PlanFixture
// style), suite determinism, the rule catalogue's integrity, and the SARIF
// 2.1.0 export.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/lint/lint.hpp"
#include "analysis/lint/rules.hpp"
#include "analysis/lint/sarif.hpp"
#include "graph/builder.hpp"
#include "partition/partitioner.hpp"
#include "runtime/plan.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/metrics.hpp"

namespace duet {
namespace {

bool has_rule(const VerifyResult& r, const std::string& rule) {
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == rule) return true;
  }
  return false;
}

Graph branchy_graph() {
  GraphBuilder b("branchy");
  const NodeId x = b.input(Shape{1, 16}, "x");
  const NodeId d = b.dense(x, 8);
  const NodeId a = b.relu(b.relu(d));
  const NodeId s = b.sigmoid(b.sigmoid(d));
  return b.finish({b.add(a, s)});
}

struct PlanFixture {
  Graph graph = branchy_graph();
  Partition partition;
  Placement placement;
  DevicePair devices = make_default_device_pair();
  ExecutionPlan plan;

  PlanFixture() {
    partition = partition_phased(graph);
    placement = Placement(partition.subgraphs.size(), DeviceKind::kCpu);
    // One multi-path branch on the GPU so the plan has cross-device edges.
    for (const Phase& phase : partition.phases) {
      if (phase.type == PhaseType::kMultiPath) {
        placement.set(phase.subgraphs.back(), DeviceKind::kGpu);
        break;
      }
    }
    plan = ExecutionPlan::build(graph, partition, placement, devices,
                                CompileOptions::compiler_defaults());
  }

  lint::LintInput input() const { return lint::make_input(plan); }

  lint::LintInput input_with_subgraphs(
      const std::vector<PlannedSubgraph>& subgraphs) const {
    return lint::LintInput{
        PlanView{plan.parent(), plan.partition(), plan.placement(), subgraphs,
                 plan.consumers(), plan.transfers(), plan.step_order()},
        plan.memory_plan(), nullptr, nullptr};
  }

  lint::LintInput input_with_transfers(
      const std::vector<TransferStep>& transfers) const {
    return lint::LintInput{
        PlanView{plan.parent(), plan.partition(), plan.placement(),
                 plan.subgraphs(), plan.consumers(), transfers,
                 plan.step_order()},
        plan.memory_plan(), nullptr, nullptr};
  }
};

// --- suite ----------------------------------------------------------------------

TEST(LintSuite, CleanPlanHasNoErrors) {
  PlanFixture f;
  const VerifyResult r = lint::LintSuite::standard().run(f.plan);
  EXPECT_EQ(r.error_count(), 0u) << r.to_string();
}

TEST(LintSuite, DiagnosticsCarryPassContextAndArtifact) {
  PlanFixture f;
  std::vector<TransferStep> transfers = f.plan.transfers();
  ASSERT_FALSE(transfers.empty()) << "fixture must have cross-device edges";
  transfers.push_back(transfers.front());  // redundant shipment
  const VerifyResult r =
      lint::LintSuite::standard().run(f.input_with_transfers(transfers));
  ASSERT_TRUE(has_rule(r, "redundant-transfer")) << r.to_string();
  for (const Diagnostic& d : r.diagnostics()) {
    EXPECT_FALSE(d.context.empty()) << d.to_string();
    EXPECT_EQ(d.location.artifact, f.graph.name()) << d.to_string();
  }
}

TEST(LintSuite, OutputIsDeterministic) {
  PlanFixture f;
  const lint::LintSuite suite = lint::LintSuite::standard();
  const VerifyResult a = suite.run(f.plan);
  const VerifyResult b = suite.run(f.plan);
  EXPECT_EQ(a.to_string(), b.to_string());
}

// --- boundary-type --------------------------------------------------------------

TEST(LintPasses, BoundaryTypeCatchesMutatedOutputShape) {
  PlanFixture f;
  std::vector<PlannedSubgraph> subs = f.plan.subgraphs();
  ASSERT_FALSE(subs.empty());
  Graph cg = subs[0].compiled.graph();
  ASSERT_FALSE(cg.outputs().empty());
  cg.mutable_node(cg.outputs()[0]).out_shape = Shape{3, 3};
  subs[0].compiled = CompiledSubgraph(std::move(cg), subs[0].device,
                                      subs[0].compiled.options(),
                                      subs[0].compiled.kernels());
  const VerifyResult r =
      lint::make_boundary_type_pass()->run(f.input_with_subgraphs(subs));
  EXPECT_TRUE(r.has_error("boundary-type")) << r.to_string();
}

TEST(LintPasses, BoundaryTypeCatchesMutatedPlaceholder) {
  PlanFixture f;
  std::vector<PlannedSubgraph> subs = f.plan.subgraphs();
  // Find a subgraph with a feed and corrupt the placeholder's shape.
  for (PlannedSubgraph& ps : subs) {
    if (ps.feeds.empty()) continue;
    Graph cg = ps.compiled.graph();
    cg.mutable_node(ps.feeds[0].input_node).out_shape = Shape{7};
    ps.compiled = CompiledSubgraph(std::move(cg), ps.device,
                                   ps.compiled.options(),
                                   ps.compiled.kernels());
    const VerifyResult r =
        lint::make_boundary_type_pass()->run(f.input_with_subgraphs(subs));
    EXPECT_TRUE(r.has_error("boundary-type")) << r.to_string();
    return;
  }
  FAIL() << "fixture has no subgraph with feeds";
}

// --- sync-elision ---------------------------------------------------------------

TEST(LintPasses, SyncElisionCatchesElidedTransfer) {
  PlanFixture f;
  ASSERT_FALSE(f.plan.transfers().empty());
  // All staging edges gone: every cross-device read is now unsynchronized.
  const VerifyResult r =
      lint::make_sync_elision_pass()->run(f.input_with_transfers({}));
  EXPECT_TRUE(r.has_error("sync-elision")) << r.to_string();
}

TEST(LintPasses, SyncElisionAcceptsCleanPlan) {
  PlanFixture f;
  const VerifyResult r = lint::make_sync_elision_pass()->run(f.input());
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.diagnostics().size(), 0u);
}

// --- redundant-transfer ---------------------------------------------------------

TEST(LintPasses, RedundantTransferCatchesDoubleShipment) {
  PlanFixture f;
  std::vector<TransferStep> transfers = f.plan.transfers();
  ASSERT_FALSE(transfers.empty());
  transfers.push_back(transfers.front());  // same value, same destination
  const VerifyResult r =
      lint::make_redundant_transfer_pass()->run(f.input_with_transfers(transfers));
  ASSERT_TRUE(has_rule(r, "redundant-transfer")) << r.to_string();
  // An optimization opportunity, not a correctness bug: warning severity.
  EXPECT_EQ(r.error_count(), 0u);
  EXPECT_GE(r.warning_count(), 1u);
}

// --- dead-subgraph / unreachable-step -------------------------------------------

TEST(LintPasses, DeadSubgraphCatchesOrphanedSink) {
  PlanFixture f;
  std::vector<PlannedSubgraph> subs = f.plan.subgraphs();
  const std::set<NodeId> outputs(f.graph.outputs().begin(),
                                 f.graph.outputs().end());
  // Detach every subgraph from the graph outputs: nothing reaches them.
  for (PlannedSubgraph& ps : subs) {
    ps.produces.erase(
        std::remove_if(ps.produces.begin(), ps.produces.end(),
                       [&](NodeId v) { return outputs.count(v) != 0; }),
        ps.produces.end());
  }
  const VerifyResult r =
      lint::make_dead_subgraph_pass()->run(f.input_with_subgraphs(subs));
  EXPECT_TRUE(has_rule(r, "dead-subgraph")) << r.to_string();
  EXPECT_TRUE(has_rule(r, "unreachable-step")) << r.to_string();
  // Step findings carry their launch-order position.
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == "unreachable-step") {
      EXPECT_GE(d.location.step, 0);
    }
  }
}

TEST(LintPasses, DeadSubgraphAcceptsCleanPlan) {
  PlanFixture f;
  const VerifyResult r = lint::make_dead_subgraph_pass()->run(f.input());
  EXPECT_EQ(r.diagnostics().size(), 0u) << r.to_string();
}

// --- swap-slot-size / swap-arena-alias ------------------------------------------

TEST(LintPasses, SwapAuditIsSilentWithoutPreviousPlan) {
  PlanFixture f;
  const VerifyResult r = lint::make_plan_swap_alias_pass()->run(f.input());
  EXPECT_EQ(r.diagnostics().size(), 0u) << r.to_string();
}

TEST(LintPasses, SwapSlotSizeCatchesResizedValue) {
  PlanFixture f;
  ASSERT_NE(f.plan.memory_plan(), nullptr);
  // The retired arena holds one value at a different size than the
  // swapped-in plan assigns — one of the two layouts is corrupt.
  MemoryPlan retired;
  bool mutated = false;
  for (ArenaSlot slot : f.plan.memory_plan()->slots()) {
    if (!mutated) {
      slot.bytes += 64;
      mutated = true;
    }
    retired.add_slot(slot);
  }
  ASSERT_TRUE(mutated);
  lint::LintInput input = f.input();
  const PlanView previous = lint::make_input(f.plan).view;
  input.previous = &previous;
  input.previous_memory = &retired;
  const VerifyResult r = lint::make_plan_swap_alias_pass()->run(input);
  EXPECT_TRUE(r.has_error("swap-slot-size")) << r.to_string();
}

TEST(LintPasses, SwapAliasReportsOverlapWithRetiredArena) {
  PlanFixture f;
  ASSERT_NE(f.plan.memory_plan(), nullptr);
  // The plan swapped with itself: every held-to-end slot trivially aliases
  // its own range, so the audit must report (as a warning, not an error —
  // executors give each plan its own arena).
  lint::LintInput input = f.input();
  const PlanView previous = lint::make_input(f.plan).view;
  input.previous = &previous;
  input.previous_memory = f.plan.memory_plan();
  const VerifyResult r = lint::make_plan_swap_alias_pass()->run(input);
  EXPECT_TRUE(has_rule(r, "swap-arena-alias")) << r.to_string();
  EXPECT_EQ(r.error_count(), 0u) << r.to_string();
}

// --- telemetry-unbounded-series -------------------------------------------------

TEST(LintPasses, UnboundedSeriesCatchesPerRequestMetricFamilies) {
  PlanFixture f;
  // The pass audits process registry state, not the plan: before the bug is
  // committed, the rule must stay silent.
  const VerifyResult clean = lint::make_unbounded_series_pass()->run(f.input());
  EXPECT_FALSE(has_rule(clean, "telemetry-unbounded-series"))
      << clean.to_string();

  // The classic instrumentation bug: one metric family instantiated per
  // request id. Registration alone (no recording) is the leak.
  for (int i = 0; i < 4; ++i) {
    telemetry::counter("lint_test.request." + std::to_string(i) +
                       ".latency_us");
  }
  const VerifyResult r = lint::make_unbounded_series_pass()->run(f.input());
  ASSERT_TRUE(has_rule(r, "telemetry-unbounded-series")) << r.to_string();
  // Hygiene advice, not a correctness bug: warning severity.
  EXPECT_EQ(r.error_count(), 0u);
  EXPECT_GE(r.warning_count(), 1u);
  bool names_template = false;
  for (const Diagnostic& d : r.diagnostics()) {
    names_template |= d.message.find("lint_test.request.<id>.latency_us") !=
                      std::string::npos;
  }
  EXPECT_TRUE(names_template)
      << "the finding must name the collapsed family template";
}

TEST(LintPasses, UnboundedSeriesIgnoresFewInstantiations) {
  PlanFixture f;
  // Three instantiations sit under the threshold: a handful of fixed shards
  // is legitimate, only unbounded growth is the smell.
  for (int i = 0; i < 3; ++i) {
    telemetry::counter("lint_test.shard." + std::to_string(i) + ".ops");
  }
  const VerifyResult r = lint::make_unbounded_series_pass()->run(f.input());
  for (const Diagnostic& d : r.diagnostics()) {
    EXPECT_EQ(d.message.find("lint_test.shard"), std::string::npos)
        << d.to_string();
  }
}

// --- rule catalogue -------------------------------------------------------------

TEST(RuleCatalogue, IdsAreUniqueAndResolvable) {
  std::set<std::string> seen;
  for (const lint::RuleInfo& rule : lint::rule_catalogue()) {
    EXPECT_TRUE(seen.insert(rule.id).second) << "duplicate rule id " << rule.id;
    EXPECT_EQ(lint::find_rule(rule.id), &rule);
    EXPECT_NE(rule.summary[0], '\0');
    EXPECT_NE(rule.anchor_file[0], '\0');
  }
  EXPECT_EQ(lint::find_rule("no-such-rule"), nullptr);
}

TEST(RuleCatalogue, CoversEveryEmittedRule) {
  // Every rule the passes can emit must resolve (SARIF ruleIndex stability).
  for (const char* rule :
       {"boundary-type", "sync-elision", "redundant-transfer", "dead-subgraph",
        "unreachable-step", "swap-slot-size", "swap-arena-alias",
        "mc-conservation", "mc-queue-accounting", "mc-lost-wakeup",
        "mc-snapshot-retired", "mc-depth-bound", "symbolic-shape-contract",
        "unbounded-dim", "transfer-blowup", "memo-bitset-fallback",
        "telemetry-unbounded-series"}) {
    EXPECT_NE(lint::find_rule(rule), nullptr) << rule;
  }
}

TEST(RuleCatalogue, AppendOnlyTailKeepsSarifRuleIndicesStable) {
  // The catalogue is append-only: consumers key dashboards on SARIF
  // ruleIndex, so a new rule may only be added at the end. Pin the tail.
  const std::vector<lint::RuleInfo>& rules = lint::rule_catalogue();
  ASSERT_FALSE(rules.empty());
  EXPECT_EQ(std::string(rules.back().id), "telemetry-unbounded-series");
  EXPECT_EQ(rules.back().severity, Diagnostic::Severity::kWarning);
  // Indices of long-standing rules must not have shifted.
  const auto index_of = [&rules](const std::string& id) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (id == rules[i].id) return i;
    }
    ADD_FAILURE() << "rule not in catalogue: " << id;
    return rules.size();
  };
  EXPECT_LT(index_of("boundary-type"), index_of("mc-conservation"));
  EXPECT_LT(index_of("mc-depth-bound"), index_of("telemetry-unbounded-series"));
}

// --- SARIF ----------------------------------------------------------------------

TEST(Sarif, EmptyRunIsValidJson) {
  const std::string sarif = lint::to_sarif({});
  std::string err;
  EXPECT_TRUE(telemetry::validate_json(sarif, &err)) << err;
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"results\":[]"), std::string::npos);
  EXPECT_NE(sarif.find("duet-lint"), std::string::npos);
}

TEST(Sarif, ResultCarriesRuleIndexLevelAndLocations) {
  Diagnostic d;
  d.severity = Diagnostic::Severity::kWarning;
  d.rule = "redundant-transfer";
  d.node = 7;
  d.subgraph = 2;
  d.context = "redundant-transfer";
  d.message = "value shipped twice";
  d.location.artifact = "wide-deep";
  const std::string sarif = lint::to_sarif({d});
  std::string err;
  ASSERT_TRUE(telemetry::validate_json(sarif, &err)) << err;
  EXPECT_NE(sarif.find("\"ruleId\":\"redundant-transfer\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"warning\""), std::string::npos);
  // No explicit file on the diagnostic: anchors to the catalogue file.
  EXPECT_NE(sarif.find(lint::find_rule("redundant-transfer")->anchor_file),
            std::string::npos);
  EXPECT_NE(sarif.find("wide-deep/subgraph#2/node%7"), std::string::npos);
}

TEST(Sarif, RuleIndexMatchesCataloguePosition) {
  Diagnostic d;
  d.rule = lint::rule_catalogue().front().id;
  d.message = "x";
  const std::string sarif = lint::to_sarif({d});
  EXPECT_NE(sarif.find("\"ruleIndex\":0"), std::string::npos) << sarif;
}

TEST(Sarif, UnknownRuleOmitsRuleIndex) {
  Diagnostic d;
  d.rule = "not-in-catalogue";
  d.message = "x";
  const std::string sarif = lint::to_sarif({d});
  std::string err;
  EXPECT_TRUE(telemetry::validate_json(sarif, &err)) << err;
  EXPECT_EQ(sarif.find("\"ruleIndex\""), std::string::npos);
}

TEST(Sarif, EscapesMessageContent) {
  Diagnostic d;
  d.rule = "boundary-type";
  d.message = "shape \"weird\"\nnewline";
  const std::string sarif = lint::to_sarif({d});
  std::string err;
  EXPECT_TRUE(telemetry::validate_json(sarif, &err)) << err;
}

// --- diagnostics plumbing -------------------------------------------------------

TEST(Diagnostics, SortOrdersErrorsFirstThenRule) {
  VerifyResult r;
  Diagnostic w;
  w.severity = Diagnostic::Severity::kWarning;
  w.rule = "a-warning";
  w.message = "w";
  Diagnostic e;
  e.severity = Diagnostic::Severity::kError;
  e.rule = "z-error";
  e.message = "e";
  r.add(w);
  r.add(e);
  r.sort();
  ASSERT_EQ(r.diagnostics().size(), 2u);
  EXPECT_EQ(r.diagnostics()[0].rule, "z-error");
  EXPECT_EQ(r.diagnostics()[1].rule, "a-warning");
}

TEST(Diagnostics, SetArtifactOnlyFillsEmpty) {
  VerifyResult r;
  Diagnostic d;
  d.rule = "x";
  d.location.artifact = "already-set";
  r.add(d);
  r.error("y", kInvalidNode, "msg");
  r.set_artifact("model");
  EXPECT_EQ(r.diagnostics()[0].location.artifact, "already-set");
  EXPECT_EQ(r.diagnostics()[1].location.artifact, "model");
}

TEST(Diagnostics, ToStringIncludesStepAndArtifact) {
  Diagnostic d;
  d.severity = Diagnostic::Severity::kWarning;
  d.rule = "unreachable-step";
  d.subgraph = 3;
  d.location.step = 5;
  d.location.artifact = "resnet18";
  d.message = "dead";
  const std::string s = d.to_string();
  EXPECT_NE(s.find("step 5"), std::string::npos) << s;
  EXPECT_NE(s.find("[resnet18]"), std::string::npos) << s;
}

}  // namespace
}  // namespace duet
