// Tests for the serving runtime: bounded-queue semantics, workload
// generators, the virtual-time queueing simulator, online recalibration,
// and the real-threaded DuetServer (determinism under concurrency, deadline
// shedding, reject-on-full, graceful drain, plan-swap equivalence), plus
// PipelinedRunner determinism the serving stack leans on.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>

#include "device/calibration.hpp"
#include "duet/engine.hpp"
#include "models/model_zoo.hpp"
#include "runtime/pipeline.hpp"
#include "serve/recalibration.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"
#include "serve/simulator.hpp"
#include "serve/workload.hpp"

namespace duet {
namespace {

using serve::BoundedQueue;

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(ServeQueue, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.try_push(int(i)), BoundedQueue<int>::Push::kAccepted);
  }
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
}

TEST(ServeQueue, RefusesWhenFullWithoutConsuming) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.try_push(1), BoundedQueue<int>::Push::kAccepted);
  EXPECT_EQ(q.try_push(2), BoundedQueue<int>::Push::kAccepted);
  int extra = 3;
  EXPECT_EQ(q.try_push(std::move(extra)), BoundedQueue<int>::Push::kFull);
  EXPECT_EQ(extra, 3) << "a refused push must leave the item with the caller";
  EXPECT_EQ(q.size(), 2u);
}

TEST(ServeQueue, CloseRefusesPushesButDrains) {
  BoundedQueue<int> q(4);
  ASSERT_EQ(q.try_push(1), BoundedQueue<int>::Push::kAccepted);
  ASSERT_EQ(q.try_push(2), BoundedQueue<int>::Push::kAccepted);
  q.close();
  EXPECT_EQ(q.try_push(3), BoundedQueue<int>::Push::kClosed);
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value()) << "closed + empty must return nullopt";
}

TEST(ServeQueue, PopBlocksUntilPush) {
  BoundedQueue<int> q(4);
  std::thread consumer([&q] {
    const auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, 42);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.try_push(42), BoundedQueue<int>::Push::kAccepted);
  consumer.join();
}

// ---------------------------------------------------------------------------
// Workload generators

TEST(ServeWorkload, PoissonIsDeterministicAscendingAtRate) {
  Rng a(7);
  Rng b(7);
  const auto t1 = serve::poisson_trace(500.0, 2000, a);
  const auto t2 = serve::poisson_trace(500.0, 2000, b);
  EXPECT_EQ(t1, t2) << "same seed must replay the same arrival process";
  ASSERT_EQ(t1.size(), 2000u);
  EXPECT_GT(t1.front(), 0.0);
  for (size_t i = 1; i < t1.size(); ++i) EXPECT_GE(t1[i], t1[i - 1]);
  EXPECT_NEAR(serve::offered_qps(t1), 500.0, 500.0 * 0.15);
}

TEST(ServeWorkload, BurstyRateSitsBetweenBaseAndBurst) {
  Rng rng(11);
  const auto trace = serve::bursty_trace(100.0, 1000.0, 0.1, 0.4, 2000, rng);
  ASSERT_EQ(trace.size(), 2000u);
  for (size_t i = 1; i < trace.size(); ++i) EXPECT_GE(trace[i], trace[i - 1]);
  const double rate = serve::offered_qps(trace);
  EXPECT_GT(rate, 100.0);
  EXPECT_LT(rate, 1000.0);
}

// ---------------------------------------------------------------------------
// Virtual-time queueing simulator

TEST(ServeSim, DeterministicReplay) {
  Rng rng(3);
  const auto arrivals = serve::poisson_trace(800.0, 500, rng);
  const auto service = [](size_t) { return 1e-3; };
  serve::ServeSimConfig cfg;
  cfg.workers = 2;
  const serve::ServeStats a = serve::simulate_serving(arrivals, service, cfg);
  const serve::ServeStats b = serve::simulate_serving(arrivals, service, cfg);
  EXPECT_EQ(a.throughput_qps, b.throughput_qps);
  EXPECT_EQ(a.sojourn.p99, b.sojourn.p99);
  EXPECT_EQ(a.admission.completed, b.admission.completed);
}

TEST(ServeSim, WorkersScaleSaturatedThroughput) {
  // 2x the 4-worker saturation rate, no deadline, queue big enough to
  // absorb everything: completion-bound throughput must scale with workers.
  Rng rng(5);
  const auto arrivals = serve::poisson_trace(8000.0, 800, rng);
  const auto service = [](size_t) { return 1e-3; };
  serve::ServeSimConfig cfg;
  cfg.queue_capacity = 1u << 20;
  cfg.workers = 1;
  const serve::ServeStats one = serve::simulate_serving(arrivals, service, cfg);
  cfg.workers = 4;
  const serve::ServeStats four = serve::simulate_serving(arrivals, service, cfg);
  EXPECT_EQ(one.admission.completed, 800u);
  EXPECT_EQ(four.admission.completed, 800u);
  EXPECT_NEAR(one.throughput_qps, 1000.0, 30.0);
  EXPECT_GT(four.throughput_qps, 3.8 * one.throughput_qps);
  EXPECT_LT(four.throughput_qps, 4.2 * one.throughput_qps);
}

TEST(ServeSim, AdmissionAccountingConserves) {
  Rng rng(9);
  const auto arrivals = serve::poisson_trace(4000.0, 1000, rng);
  const auto service = [](size_t) { return 1e-3; };
  serve::ServeSimConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 16;
  cfg.deadline_s = 5e-3;
  const serve::ServeStats s = serve::simulate_serving(arrivals, service, cfg);
  EXPECT_EQ(s.admission.offered, 1000u);
  EXPECT_EQ(s.admission.offered,
            s.admission.completed + s.admission.shed + s.admission.rejected);
  EXPECT_GT(s.admission.rejected, 0u) << "4x overload on a 16-deep queue";
  EXPECT_GT(s.admission.shed, 0u) << "5 ms deadline at 4x overload";
  EXPECT_LE(s.admission.completed_late, s.admission.completed);
}

TEST(ServeSim, NoDeadlineNeverSheds) {
  Rng rng(13);
  const auto arrivals = serve::poisson_trace(3000.0, 500, rng);
  serve::ServeSimConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 1u << 20;
  const serve::ServeStats s =
      serve::simulate_serving(arrivals, [](size_t) { return 1e-3; }, cfg);
  EXPECT_EQ(s.admission.shed, 0u);
  EXPECT_EQ(s.admission.completed, 500u);
  EXPECT_GT(s.max_queue_depth, 0u);
}

// ---------------------------------------------------------------------------
// Online recalibration

struct RecalFixture {
  Graph model;
  DuetOptions options;
  DuetEngine engine;

  RecalFixture()
      : model(models::build_wide_deep(models::WideDeepConfig::tiny())),
        options([] {
          DuetOptions o;
          o.enable_fallback = false;  // keep the heterogeneous plan
          return o;
        }()),
        engine(models::build_wide_deep(models::WideDeepConfig::tiny()),
               options) {}

  // Observed times that exactly reproduce the profiles (plus the dispatch
  // overhead SimExecutor folds into every exec span).
  serve::DriftAccumulator faithful_observations(uint64_t samples) const {
    const auto& profiles = engine.report().profiles;
    serve::DriftAccumulator obs(profiles.size());
    const double dispatch = executor_dispatch_overhead();
    for (size_t i = 0; i < profiles.size(); ++i) {
      for (int d = 0; d < kNumDeviceKinds; ++d) {
        const DeviceKind kind = static_cast<DeviceKind>(d);
        for (uint64_t s = 0; s < samples; ++s) {
          obs.record(static_cast<int>(i), kind,
                     profiles[i].time_on(kind) + dispatch);
        }
      }
    }
    return obs;
  }
};

TEST(ServeRecal, FaithfulObservationsDoNotSwap) {
  RecalFixture f;
  const serve::DriftAccumulator obs = f.faithful_observations(8);
  serve::RecalibrationOptions opts;
  const serve::RecalibrationResult r = serve::recalibrate(
      f.engine.model(), f.engine.partition(), f.engine.report().profiles, obs,
      f.engine.report().schedule.placement,
      f.engine.devices().link->params(), opts);
  EXPECT_FALSE(r.swapped);
  EXPECT_EQ(r.placement, f.engine.report().schedule.placement);
  EXPECT_GT(r.overridden_cells, 0u);
  // Observed costs equal profiled costs, so the prediction for the current
  // placement must match the scheduler's original estimate.
  EXPECT_NEAR(r.predicted_current_s, f.engine.report().schedule.est_latency_s,
              f.engine.report().schedule.est_latency_s * 1e-6);
}

TEST(ServeRecal, UnderSampledCellsKeepOfflineProfile) {
  RecalFixture f;
  const serve::DriftAccumulator obs = f.faithful_observations(2);
  serve::RecalibrationOptions opts;
  opts.min_samples = 8;
  const serve::RecalibrationResult r = serve::recalibrate(
      f.engine.model(), f.engine.partition(), f.engine.report().profiles, obs,
      f.engine.report().schedule.placement,
      f.engine.devices().link->params(), opts);
  EXPECT_EQ(r.overridden_cells, 0u);
  EXPECT_FALSE(r.swapped);
}

TEST(ServeRecal, DriftedDeviceTriggersSwap) {
  RecalFixture f;
  const Placement& current = f.engine.report().schedule.placement;
  const auto& profiles = f.engine.report().profiles;
  serve::DriftAccumulator obs = f.faithful_observations(8);
  // The runtime now observes every subgraph running 25x slower than profiled
  // on its currently-assigned device: the corrected schedule must abandon
  // the stale placement.
  const double dispatch = executor_dispatch_overhead();
  for (size_t i = 0; i < profiles.size(); ++i) {
    const DeviceKind assigned = current.of(static_cast<int>(i));
    for (uint64_t s = 0; s < 16; ++s) {
      obs.record(static_cast<int>(i), assigned,
                 25.0 * profiles[i].time_on(assigned) + dispatch);
    }
  }
  serve::RecalibrationOptions opts;
  const serve::RecalibrationResult r = serve::recalibrate(
      f.engine.model(), f.engine.partition(), profiles, obs, current,
      f.engine.devices().link->params(), opts);
  EXPECT_TRUE(r.swapped);
  EXPECT_NE(r.placement, current);
  EXPECT_LT(r.predicted_new_s,
            r.predicted_current_s * (1.0 - opts.swap_threshold));
}

TEST(ServeRecal, DriftAccumulatorRecordsTimelines) {
  RecalFixture f;
  Rng rng(2);
  const auto feeds = models::make_random_feeds(f.engine.model(), rng);
  const ExecutionResult result = f.engine.infer(feeds);
  serve::DriftAccumulator obs(f.engine.partition().subgraphs.size());
  obs.record(result.timeline);
  EXPECT_GT(obs.total_samples(), 0u);
  obs.reset();
  EXPECT_EQ(obs.total_samples(), 0u);
}

// ---------------------------------------------------------------------------
// DuetServer

Graph tiny_model() {
  return models::build_wide_deep(models::WideDeepConfig::tiny());
}

serve::ServeOptions hetero_options() {
  serve::ServeOptions o;
  o.engine.enable_fallback = false;
  return o;
}

// Stress knobs for the threaded-server tests. The defaults keep CI fast;
// the TSan job turns them up (more workers, more in-flight requests) so the
// race detector sees far more interleavings without a code change:
//   DUET_SERVE_STRESS_WORKERS  worker-thread count        (default: base)
//   DUET_SERVE_STRESS_ITERS    request-count multiplier   (default: 1)
int stress_workers(int base) {
  if (const char* env = std::getenv("DUET_SERVE_STRESS_WORKERS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return base;
}

int stress_iters(int base) {
  if (const char* env = std::getenv("DUET_SERVE_STRESS_ITERS")) {
    const int mult = std::atoi(env);
    if (mult > 0) return base * mult;
  }
  return base;
}

TEST(ServeServer, OutputsBitIdenticalForOneAndManyWorkers) {
  DuetOptions eopts;
  eopts.enable_fallback = false;
  DuetEngine reference(tiny_model(), eopts);
  Rng rng(4);
  const auto feeds = models::make_random_feeds(reference.model(), rng);
  const ExecutionResult expect = reference.infer(feeds);

  for (int workers : {1, stress_workers(4)}) {
    serve::ServeOptions opts = hetero_options();
    opts.workers = workers;
    serve::DuetServer server(tiny_model(), opts);
    std::vector<std::future<serve::Response>> futures;
    const int requests = stress_iters(6);
    for (int i = 0; i < requests; ++i) futures.push_back(server.submit(feeds));
    for (auto& f : futures) {
      const serve::Response r = f.get();
      ASSERT_EQ(r.status, serve::RequestStatus::kOk);
      ASSERT_EQ(r.outputs.size(), expect.outputs.size());
      for (size_t i = 0; i < r.outputs.size(); ++i) {
        ASSERT_EQ(r.outputs[i].byte_size(), expect.outputs[i].byte_size());
        EXPECT_EQ(std::memcmp(r.outputs[i].raw_data(),
                              expect.outputs[i].raw_data(),
                              r.outputs[i].byte_size()),
                  0)
            << workers << " workers must serve bit-identical outputs";
      }
      EXPECT_DOUBLE_EQ(r.modeled_latency_s, expect.latency_s)
          << "modeled service time is a property of the plan, not the worker";
    }
    server.shutdown();
  }
}

TEST(ServeServer, ExpiredDeadlinesAreShedNotExecuted) {
  serve::ServeOptions opts = hetero_options();
  opts.workers = 2;
  opts.start_paused = true;
  opts.default_deadline_s = 1e-4;
  serve::DuetServer server(tiny_model(), opts);
  Rng rng(6);
  const auto feeds = models::make_random_feeds(server.engine().model(), rng);
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(server.submit(feeds));
  // Workers are paused; every deadline expires before service can start.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.resume();
  server.drain();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, serve::RequestStatus::kShed);
  }
  const serve::ServerStats s = server.stats();
  EXPECT_EQ(s.admission.offered, 4u);
  EXPECT_EQ(s.admission.accepted, 4u);
  EXPECT_EQ(s.admission.shed, 4u);
  EXPECT_EQ(s.admission.completed, 0u);
}

TEST(ServeServer, FullQueueRejectsImmediately) {
  serve::ServeOptions opts = hetero_options();
  opts.workers = 1;
  opts.queue_capacity = 3;
  opts.start_paused = true;
  serve::DuetServer server(tiny_model(), opts);
  Rng rng(8);
  const auto feeds = models::make_random_feeds(server.engine().model(), rng);
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(server.submit(feeds));
  // Paused workers: arrivals 4 and 5 found the 3-deep queue full and must
  // already be resolved as rejected.
  for (int i = 3; i < 5; ++i) {
    ASSERT_EQ(futures[static_cast<size_t>(i)].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(futures[static_cast<size_t>(i)].get().status,
              serve::RequestStatus::kRejected);
  }
  server.resume();
  server.drain();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get().status,
              serve::RequestStatus::kOk);
  }
  const serve::ServerStats s = server.stats();
  EXPECT_EQ(s.admission.offered, 5u);
  EXPECT_EQ(s.admission.accepted, 3u);
  EXPECT_EQ(s.admission.rejected, 2u);
  EXPECT_EQ(s.admission.completed, 3u);
}

TEST(ServeServer, DrainResolvesEveryInFlightRequest) {
  serve::ServeOptions opts = hetero_options();
  opts.workers = stress_workers(2);
  const int requests = stress_iters(8);
  // Scale capacity with the request count so the stress run never trades
  // drain coverage for reject coverage.
  opts.queue_capacity = static_cast<size_t>(requests);
  serve::DuetServer server(tiny_model(), opts);
  Rng rng(10);
  const auto feeds = models::make_random_feeds(server.engine().model(), rng);
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < requests; ++i) futures.push_back(server.submit(feeds));
  server.drain();
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "drain must not return while a request is unresolved";
    EXPECT_EQ(f.get().status, serve::RequestStatus::kOk);
  }
  EXPECT_EQ(server.stats().admission.completed,
            static_cast<uint64_t>(requests));
  // A drained server is closed for business.
  EXPECT_EQ(server.submit(feeds).get().status, serve::RequestStatus::kRejected);
}

// The threaded twin of the model checker's abstract protocol
// (analysis/model_check): producers submitting, workers consuming, a swapper
// flipping placements mid-stream, then drain. Under TSan with the stress env
// knobs turned up this is the main interleaving amplifier.
TEST(ServeServer, ConcurrentSubmitSwapDrainStress) {
  serve::ServeOptions opts = hetero_options();
  opts.workers = stress_workers(2);
  const int per_producer = stress_iters(4);
  constexpr int kProducers = 2;
  opts.queue_capacity = static_cast<size_t>(kProducers * per_producer);
  serve::DuetServer server(tiny_model(), opts);
  Rng rng(16);
  const auto feeds = models::make_random_feeds(server.engine().model(), rng);

  std::vector<std::future<serve::Response>> futures[kProducers];
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i) {
        futures[p].push_back(server.submit(feeds));
      }
    });
  }
  std::thread swapper([&] {
    Placement flipped = server.current_placement();
    flipped.flip(0);
    server.apply_placement(flipped);
  });
  for (auto& t : producers) t.join();
  swapper.join();
  server.drain();

  uint64_t ok = 0;
  for (auto& fs : futures) {
    for (auto& f : fs) {
      const serve::Response r = f.get();
      // Admission is closed-loop here (capacity == total submissions), so
      // every request resolves kOk regardless of swap timing.
      ASSERT_EQ(r.status, serve::RequestStatus::kOk);
      ++ok;
    }
  }
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.swap_count, 1u);
  EXPECT_EQ(stats.admission.completed, ok);
  // Conservation — the invariant the model checker proves exhaustively on
  // the abstraction must hold on the real implementation too.
  EXPECT_EQ(stats.admission.offered,
            stats.admission.completed + stats.admission.shed +
                stats.admission.rejected);
}

TEST(ServeServer, PlacementSwapPreservesNumericsExactly) {
  serve::ServeOptions opts = hetero_options();
  opts.workers = 1;
  serve::DuetServer server(tiny_model(), opts);
  Rng rng(12);
  const auto feeds = models::make_random_feeds(server.engine().model(), rng);
  const serve::Response before = server.submit(feeds).get();
  ASSERT_EQ(before.status, serve::RequestStatus::kOk);

  Placement flipped = server.current_placement();
  flipped.flip(0);
  server.apply_placement(flipped);
  EXPECT_EQ(server.swap_count(), 1u);
  EXPECT_EQ(server.current_placement(), flipped);

  const serve::Response after = server.submit(feeds).get();
  ASSERT_EQ(after.status, serve::RequestStatus::kOk);
  EXPECT_GT(after.plan_version, before.plan_version);
  ASSERT_EQ(after.outputs.size(), before.outputs.size());
  for (size_t i = 0; i < after.outputs.size(); ++i) {
    ASSERT_EQ(after.outputs[i].byte_size(), before.outputs[i].byte_size());
    EXPECT_EQ(std::memcmp(after.outputs[i].raw_data(),
                          before.outputs[i].raw_data(),
                          after.outputs[i].byte_size()),
              0)
        << "a placement swap must never change what the model computes";
  }
}

TEST(ServeServer, RecalibrateNowUsesObservedDrift) {
  serve::ServeOptions opts = hetero_options();
  opts.workers = 2;
  opts.recalibration.min_samples = 1;
  serve::DuetServer server(tiny_model(), opts);
  Rng rng(14);
  const auto feeds = models::make_random_feeds(server.engine().model(), rng);
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(server.submit(feeds));
  for (auto& f : futures) ASSERT_EQ(f.get().status, serve::RequestStatus::kOk);
  server.drain();

  const serve::ServerStats stats = server.stats();
  EXPECT_GT(stats.drift_samples, 0u);
  const serve::RecalibrationResult r = server.recalibrate_now();
  EXPECT_GT(r.overridden_cells, 0u);
  EXPECT_GT(r.predicted_current_s, 0.0);
  // Noise-free serving observes exactly the profiled costs, so recalibration
  // must see no win worth a swap.
  EXPECT_FALSE(r.swapped);
  EXPECT_EQ(server.swap_count(), 0u);
  EXPECT_EQ(server.stats().recalibrations, 1u);
}

// ---------------------------------------------------------------------------
// Observability (PR 8): windowed SLO view, drift edge cases, flight dumps

TEST(ServeRecal, EmptyWindowRecalibrationIsSafeNoOp) {
  // A server that has served nothing has an empty SLO window and zero drift
  // samples; recalibrate_now must skip the scheduler rerun entirely instead
  // of re-deriving (and possibly swapping to) the offline decision.
  serve::ServeOptions opts = hetero_options();
  opts.workers = 1;
  serve::DuetServer server(tiny_model(), opts);
  const Placement before = server.current_placement();
  for (int i = 0; i < 2; ++i) {
    const serve::RecalibrationResult r = server.recalibrate_now();
    EXPECT_FALSE(r.swapped);
    EXPECT_EQ(r.overridden_cells, 0u);
    EXPECT_EQ(r.placement, before);
  }
  EXPECT_EQ(server.swap_count(), 0u);
  EXPECT_EQ(server.current_placement(), before);
}

TEST(ServeRecal, SingleSampleDriftIsUsableAtMinSamplesOne) {
  RecalFixture f;
  const auto& profiles = f.engine.report().profiles;
  serve::DriftAccumulator obs(profiles.size());
  // Exactly one observation, for one cell: with min_samples=1 that cell is
  // overridden and the schedule still comes out well-formed.
  const DeviceKind assigned = f.engine.report().schedule.placement.of(0);
  obs.record(0, assigned,
             profiles[0].time_on(assigned) + executor_dispatch_overhead());
  EXPECT_EQ(obs.total_samples(), 1u);
  serve::RecalibrationOptions opts;
  opts.min_samples = 1;
  const serve::RecalibrationResult r = serve::recalibrate(
      f.engine.model(), f.engine.partition(), profiles, obs,
      f.engine.report().schedule.placement, f.engine.devices().link->params(),
      opts);
  EXPECT_EQ(r.overridden_cells, 1u);
  EXPECT_FALSE(r.swapped) << "one faithful sample is no reason to move";
  EXPECT_GT(r.predicted_current_s, 0.0);
}

// Drift recording (workers, under stats_mutex_) racing recalibration's
// snapshot-and-swap. The TSan job turns the stress knobs up; the assertion
// here is conservation plus "no crash, no torn accumulator".
TEST(ServeServer, ConcurrentRecordDuringSwapStress) {
  serve::ServeOptions opts = hetero_options();
  opts.workers = stress_workers(2);
  opts.recalibration.min_samples = 1;
  const int requests = stress_iters(8);
  opts.queue_capacity = static_cast<size_t>(requests);
  serve::DuetServer server(tiny_model(), opts);
  Rng rng(18);
  const auto feeds = models::make_random_feeds(server.engine().model(), rng);

  std::vector<std::future<serve::Response>> futures;
  std::thread producer([&] {
    for (int i = 0; i < requests; ++i) futures.push_back(server.submit(feeds));
  });
  std::thread recalibrator([&] {
    for (int i = 0; i < 4; ++i) server.recalibrate_now();
  });
  std::thread swapper([&] {
    Placement flipped = server.current_placement();
    flipped.flip(0);
    server.apply_placement(flipped);
  });
  producer.join();
  recalibrator.join();
  swapper.join();
  server.drain();

  uint64_t ok = 0;
  for (auto& f : futures) {
    ok += f.get().status == serve::RequestStatus::kOk ? 1 : 0;
  }
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.admission.completed, ok);
  EXPECT_GE(stats.swap_count, 1u);
  EXPECT_EQ(stats.admission.offered,
            stats.admission.completed + stats.admission.shed +
                stats.admission.rejected);
}

TEST(ServeServer, SloSnapshotReflectsWindowedTraffic) {
  serve::ServeOptions opts = hetero_options();
  opts.workers = 2;
  serve::DuetServer server(tiny_model(), opts);
  Rng rng(20);
  const auto feeds = models::make_random_feeds(server.engine().model(), rng);
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(server.submit(feeds));
  for (auto& f : futures) ASSERT_EQ(f.get().status, serve::RequestStatus::kOk);
  server.drain();

  const telemetry::SloSnapshot snap = server.slo_snapshot();
  EXPECT_EQ(snap.offered, 6u);
  EXPECT_EQ(snap.completed, 6u);
  EXPECT_EQ(snap.shed, 0u);
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.breaches, 0u) << "no deadlines -> no breaches";
  EXPECT_GT(snap.latency_p50_us, 0.0);
  EXPECT_LE(snap.latency_p50_us, snap.latency_p99_us);
  EXPECT_EQ(snap.plan_version, 1u)
      << "no swap in the window -> the live plan version";
}

// The PR-8 acceptance scenario: a seeded deadline-miss storm must produce a
// validated post-mortem dump whose summary reconstructs at least one full
// request path (enqueue -> pickup -> launch -> complete).
TEST(ServeServer, DeadlineMissStormTriggersFlightDump) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "duet-flight-storm-test";
  fs::remove_all(dir);
  telemetry::FlightRecorder::instance().clear();

  serve::ServeOptions opts = hetero_options();
  opts.workers = 2;
  opts.queue_capacity = 32;
  opts.observability.dump_dir = dir.string();
  opts.observability.trigger.miss_burst = 3;
  opts.observability.trigger.miss_window_ms = 10e3;
  serve::DuetServer server(tiny_model(), opts);
  Rng rng(22);
  const auto feeds = models::make_random_feeds(server.engine().model(), rng);

  // Healthy phase: full request paths land in the rings.
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(server.submit(feeds));
  for (auto& f : futures) ASSERT_EQ(f.get().status, serve::RequestStatus::kOk);
  futures.clear();

  // Storm: deadlines already expired at admission, every pickup sheds.
  for (int i = 0; i < 6; ++i) {
    futures.push_back(server.submit(feeds, /*deadline_s=*/1e-9));
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, serve::RequestStatus::kShed);
  }
  server.drain();

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.flight_dumps, 1u) << "the trigger fires exactly once";
  EXPECT_GE(stats.slo_breaches, 6u);
  ASSERT_TRUE(fs::exists(dir / "flight_trace.json"));
  ASSERT_TRUE(fs::exists(dir / "flight_summary.json"));

  std::ifstream in(dir / "flight_summary.json");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string summary = buffer.str();
  EXPECT_NE(summary.find("\"reason\":\"deadline-miss-burst\""),
            std::string::npos);
  const size_t pos = summary.find("\"complete_paths\":");
  ASSERT_NE(pos, std::string::npos);
  const int paths =
      std::atoi(summary.c_str() + pos + std::strlen("\"complete_paths\":"));
  EXPECT_GE(paths, 1) << "the dump must reconstruct a full request path";
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// PipelinedRunner properties the serving stack relies on

TEST(ServePipeline, NoiseFreeRunsAreIdentical) {
  DuetOptions eopts;
  eopts.enable_fallback = false;
  DuetEngine engine(tiny_model(), eopts);
  PipelinedRunner runner(engine.devices());
  const auto a = runner.run(engine.plan(), 16, false);
  const auto b = runner.run(engine.plan(), 16, false);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.throughput_qps, b.throughput_qps);
  ASSERT_EQ(a.query_latency_s.size(), 16u);
  EXPECT_EQ(a.query_latency_s, b.query_latency_s);
}

TEST(ServePipeline, ThroughputBoundedByBottleneckDevice) {
  DuetOptions eopts;
  eopts.enable_fallback = false;
  DuetEngine engine(tiny_model(), eopts);
  PipelinedRunner runner(engine.devices());
  const auto r = runner.run(engine.plan(), 32, false);
  ASSERT_GT(r.bottleneck_busy_s, 0.0);
  // Steady state: at most one query per bottleneck-busy interval (small
  // slack for the pipeline fill/drain ramps).
  EXPECT_LE(r.throughput_qps, 1.0 / r.bottleneck_busy_s * 1.05);
  EXPECT_GE(r.mean_latency_s, 0.0);
}

}  // namespace
}  // namespace duet
