// Tests for the PR-8 observability layer: the always-on flight recorder
// (ring semantics, freeze handshake, dump artifacts), dump triggers, the
// log-scale histogram + sliding-window SLO monitor, request trace context,
// and the Prometheus text exposition.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "telemetry/chrome_trace.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/slo_monitor.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

namespace duet::telemetry {
namespace {

using Kind = FlightKind;

// The recorder is process-global; tests reset it around themselves so they
// stay order-independent within this binary.
struct RecorderReset {
  RecorderReset() {
    FlightRecorder::instance().set_recording_enabled(true);
    FlightRecorder::instance().unfreeze();
    FlightRecorder::instance().set_ring_capacity(4096);
    FlightRecorder::instance().clear();
  }
  ~RecorderReset() {
    FlightRecorder::instance().set_recording_enabled(true);
    FlightRecorder::instance().unfreeze();
    FlightRecorder::instance().set_ring_capacity(4096);
    FlightRecorder::instance().clear();
  }
};

// ---------------------------------------------------------------------------
// Flight recorder rings

TEST(FlightRecorder, RingOverwritesOldestWhenFull) {
  RecorderReset reset;
  FlightRecorder& rec = FlightRecorder::instance();
  rec.set_ring_capacity(8);
  for (uint64_t i = 1; i <= 20; ++i) {
    rec.record(Kind::kLaunch, /*trace_id=*/i, /*arg0=*/i);
  }
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.overwritten(), 12u);
  const std::vector<FlightEvent> events = rec.collect();
  ASSERT_EQ(events.size(), 8u) << "only the newest capacity-many survive";
  for (const FlightEvent& e : events) {
    EXPECT_GE(e.trace_id, 13u) << "the oldest events must be the ones lost";
  }
}

TEST(FlightRecorder, FrozenRecorderDropsEvents) {
  RecorderReset reset;
  FlightRecorder& rec = FlightRecorder::instance();
  rec.record(Kind::kEnqueue, 1);
  EXPECT_EQ(rec.recorded(), 1u);
  rec.freeze();
  EXPECT_TRUE(rec.frozen());
  rec.record(Kind::kEnqueue, 2);
  EXPECT_EQ(rec.recorded(), 1u) << "a frozen ring must not move";
  rec.unfreeze();
  rec.record(Kind::kEnqueue, 3);
  EXPECT_EQ(rec.recorded(), 2u);
}

TEST(FlightRecorder, DisabledRecorderDropsEvents) {
  RecorderReset reset;
  FlightRecorder& rec = FlightRecorder::instance();
  EXPECT_TRUE(rec.recording_enabled()) << "always-on is the default";
  rec.set_recording_enabled(false);
  rec.record(Kind::kEnqueue, 1);
  EXPECT_EQ(rec.recorded(), 0u);
  rec.set_recording_enabled(true);
  rec.record(Kind::kEnqueue, 1);
  EXPECT_EQ(rec.recorded(), 1u);
}

TEST(FlightRecorder, CollectMergesThreadsOldestFirst) {
  RecorderReset reset;
  FlightRecorder& rec = FlightRecorder::instance();
  rec.record(Kind::kEnqueue, 7);
  std::thread worker([&rec] { rec.record(Kind::kPickup, 7); });
  worker.join();
  rec.record(Kind::kComplete, 7);
  const std::vector<FlightEvent> events = rec.collect();
  ASSERT_GE(events.size(), 3u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t_us, events[i - 1].t_us);
  }
  FlightDumpSummary summary;
  summarize_flight_events(events, &summary);
  EXPECT_GE(summary.threads, 2u) << "the worker's ring must be collected too";
}

TEST(FlightRecorder, DumpWritesValidatedArtifacts) {
  RecorderReset reset;
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "duet-flight-dump";
  fs::remove_all(dir);

  FlightRecorder& rec = FlightRecorder::instance();
  // One full request path plus an unrelated swap.
  rec.record(Kind::kEnqueue, 42, /*arg0=*/0);
  rec.record(Kind::kPickup, 42, /*arg0=*/5);
  rec.record(Kind::kLaunch, 42, /*arg0=*/0, /*arg1=*/1000, /*device=*/0);
  rec.record(Kind::kComplete, 42, /*arg0=*/1, /*arg1=*/250);
  rec.record(Kind::kSwap, 0, /*arg0=*/2);

  const FlightDumpSummary summary = rec.dump(dir.string(), "test-reason");
  EXPECT_FALSE(rec.frozen()) << "dump must unfreeze on the way out";
  EXPECT_EQ(summary.reason, "test-reason");
  EXPECT_EQ(summary.events, 5u);
  EXPECT_EQ(summary.complete_paths, 1u);
  EXPECT_EQ(summary.kind_counts[static_cast<int>(Kind::kLaunch)], 1u);
  EXPECT_EQ(summary.kind_counts[static_cast<int>(Kind::kSwap)], 1u);
  ASSERT_TRUE(fs::exists(summary.trace_path));
  ASSERT_TRUE(fs::exists(summary.summary_path));

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  std::string err;
  const std::string trace = slurp(summary.trace_path);
  EXPECT_TRUE(validate_json(trace, &err)) << err;
  EXPECT_NE(trace.find("flight-recorder"), std::string::npos);
  const std::string summary_text = slurp(summary.summary_path);
  EXPECT_TRUE(validate_json(summary_text, &err)) << err;
  EXPECT_NE(summary_text.find("\"complete_paths\":1"), std::string::npos);
  EXPECT_NE(summary_text.find("\"example_path\":[{"), std::string::npos);
  fs::remove_all(dir);
}

TEST(FlightTrace, FlowEventsConnectTheRequestArc) {
  // Two events for one request on different threads: the trace must carry a
  // flow start ("s") and finish ("f") binding the arc, with bp:"e" on the
  // non-start step.
  std::vector<FlightEvent> events(2);
  events[0].t_us = 10.0;
  events[0].trace_id = 99;
  events[0].tid = 1;
  events[0].kind = Kind::kEnqueue;
  events[1].t_us = 20.0;
  events[1].trace_id = 99;
  events[1].tid = 2;
  events[1].kind = Kind::kComplete;
  const std::string trace = flight_trace_json(events);
  std::string err;
  EXPECT_TRUE(validate_json(trace, &err)) << err;
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(trace.find("\"bp\":\"e\""), std::string::npos);

  // A lone event has no arc: no flow phases at all.
  events.resize(1);
  const std::string lone = flight_trace_json(events);
  EXPECT_EQ(lone.find("\"ph\":\"s\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Dump triggers

TEST(DumpTrigger, MissBurstFiresOnceWithinWindow) {
  DumpTriggerConfig cfg;
  cfg.miss_burst = 3;
  cfg.miss_window_ms = 100.0;
  DumpTrigger trigger(cfg);
  EXPECT_FALSE(trigger.on_deadline_miss(0.0));
  EXPECT_FALSE(trigger.on_deadline_miss(10e3));
  EXPECT_TRUE(trigger.on_deadline_miss(20e3)) << "third miss inside 100 ms";
  EXPECT_TRUE(trigger.fired());
  EXPECT_FALSE(trigger.on_deadline_miss(21e3)) << "fire-once";
  trigger.reset();
  EXPECT_FALSE(trigger.fired());
}

TEST(DumpTrigger, SpreadOutMissesNeverFire) {
  DumpTriggerConfig cfg;
  cfg.miss_burst = 3;
  cfg.miss_window_ms = 100.0;
  DumpTrigger trigger(cfg);
  // One miss every 200 ms: the 100 ms window never holds more than one.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(trigger.on_deadline_miss(i * 200e3));
  }
  EXPECT_FALSE(trigger.fired());
}

TEST(DumpTrigger, ShedRateFiresOverRecentOutcomes) {
  DumpTriggerConfig cfg;
  cfg.shed_rate = 0.5;
  cfg.rate_window = 8;
  DumpTrigger trigger(cfg);
  bool fired = false;
  for (int i = 0; i < 4; ++i) fired |= trigger.on_outcome(/*shed=*/false);
  EXPECT_FALSE(fired) << "healthy traffic must not fire";
  for (int i = 0; i < 4; ++i) fired |= trigger.on_outcome(/*shed=*/true);
  EXPECT_TRUE(fired) << "4/8 recent outcomes shed reaches the 0.5 threshold";
}

TEST(DumpTrigger, DisabledConfigNeverFires) {
  DumpTrigger trigger;  // both thresholds zero
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(trigger.on_deadline_miss(i * 1e3));
    EXPECT_FALSE(trigger.on_outcome(true));
  }
  EXPECT_FALSE(trigger.fired());
}

TEST(FlightSignal, InstallRetargetsDumpDirectory) {
  install_signal_dump("/tmp/duet-signal-a");
  EXPECT_EQ(signal_dump_dir(), "/tmp/duet-signal-a");
  install_signal_dump("/tmp/duet-signal-b");
  EXPECT_EQ(signal_dump_dir(), "/tmp/duet-signal-b");
}

// ---------------------------------------------------------------------------
// Log-scale histogram

TEST(LogHistogram, PercentilesWithinBucketResolution) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.observed_min(), 1.0);
  EXPECT_DOUBLE_EQ(h.observed_max(), 1000.0);
  // 4 sub-buckets per octave bounds relative error to ~2^(1/4)-1 ≈ 19%,
  // interpolation does much better in practice; allow 20%.
  EXPECT_NEAR(h.percentile(0.5), 500.0, 100.0);
  EXPECT_NEAR(h.percentile(0.99), 990.0, 200.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
}

TEST(LogHistogram, MergeEqualsUnion) {
  LogHistogram a;
  LogHistogram b;
  LogHistogram both;
  for (int i = 1; i <= 100; ++i) {
    a.observe(static_cast<double>(i));
    both.observe(static_cast<double>(i));
  }
  for (int i = 1000; i <= 1100; ++i) {
    b.observe(static_cast<double>(i));
    both.observe(static_cast<double>(i));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.sum(), both.sum());
  EXPECT_DOUBLE_EQ(a.percentile(0.5), both.percentile(0.5));
  EXPECT_DOUBLE_EQ(a.observed_max(), both.observed_max());
}

TEST(LogHistogram, BucketIndexIsMonotonic) {
  int prev = -1;
  for (double v : {1e-3, 0.5, 1.0, 2.0, 3.0, 1e3, 1e6, 1e9, 1e12}) {
    const int idx = LogHistogram::bucket_index(v);
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, LogHistogram::kNumBuckets);
    EXPECT_GE(idx, prev) << "bucket index must not decrease with v=" << v;
    prev = idx;
  }
  // Each value lands inside its bucket bounds.
  const int idx = LogHistogram::bucket_index(100.0);
  EXPECT_LE(LogHistogram::bucket_lower(idx), 100.0);
  EXPECT_GT(LogHistogram::bucket_upper(idx), 100.0);
}

TEST(LogHistogram, EmptyAndClear) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
  h.observe(5.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

// ---------------------------------------------------------------------------
// Sliding-window SLO monitor (synthetic clock: microseconds)

TEST(SloMonitor, SnapshotAggregatesTheWindow) {
  SloMonitor mon(/*window_s=*/10.0, /*buckets=*/10);
  const double t0 = 1e6;
  mon.record_offered(t0);
  mon.record_offered(t0);
  mon.record_offered(t0);
  mon.record_completed(t0, /*latency_us=*/1000.0, /*breach=*/false);
  mon.record_completed(t0, /*latency_us=*/2000.0, /*breach=*/true);
  mon.record_shed(t0);
  mon.record_queue_wait(t0, 500.0);
  mon.record_queue_depth(t0, 4.0);
  mon.record_plan_version(t0, 3);

  const SloSnapshot s = mon.snapshot(t0);
  EXPECT_EQ(s.offered, 3u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.breaches, 2u) << "one breached completion + one shed";
  EXPECT_NEAR(s.shed_rate, 1.0 / 3.0, 1e-12);
  EXPECT_GT(s.latency_p50_us, 0.0);
  EXPECT_LE(s.latency_p50_us, s.latency_p99_us);
  EXPECT_NEAR(s.mean_queue_depth, 4.0, 1e-12);
  EXPECT_EQ(s.plan_version, 3u);
}

TEST(SloMonitor, WindowForgetsOldBuckets) {
  SloMonitor mon(/*window_s=*/10.0, /*buckets=*/10);
  mon.record_offered(1e6);
  mon.record_completed(1e6, 100.0, false);
  EXPECT_EQ(mon.snapshot(1e6).offered, 1u);
  // 5 seconds later the events are still inside the 10 s window...
  EXPECT_EQ(mon.snapshot(6e6).offered, 1u);
  // ...but 100 seconds later every bucket is stale.
  const SloSnapshot late = mon.snapshot(101e6);
  EXPECT_EQ(late.offered, 0u);
  EXPECT_EQ(late.completed, 0u);
  EXPECT_DOUBLE_EQ(late.latency_p50_us, 0.0);
}

TEST(SloMonitor, BucketReuseZeroesStaleCounts) {
  SloMonitor mon(/*window_s=*/2.0, /*buckets=*/2);  // 1 s buckets
  mon.record_offered(0.5e6);   // epoch 0
  mon.record_offered(1.5e6);   // epoch 1
  mon.record_offered(2.5e6);   // epoch 2 — reuses epoch-0's slot
  const SloSnapshot s = mon.snapshot(2.5e6);
  EXPECT_EQ(s.offered, 2u) << "epoch 0 left the window when its slot was "
                              "reused; epochs 1 and 2 remain";
}

// ---------------------------------------------------------------------------
// Trace context

TEST(TraceContext, ScopeSetsAndRestores) {
  EXPECT_EQ(current_trace_id(), 0u);
  {
    TraceScope outer(7);
    EXPECT_EQ(current_trace_id(), 7u);
    {
      TraceScope inner(9);
      EXPECT_EQ(current_trace_id(), 9u);
    }
    EXPECT_EQ(current_trace_id(), 7u) << "inner scope must restore outer id";
  }
  EXPECT_EQ(current_trace_id(), 0u);
}

TEST(TraceContext, IsPerThread) {
  TraceScope scope(11);
  uint64_t seen = 99;
  std::thread t([&seen] { seen = current_trace_id(); });
  t.join();
  EXPECT_EQ(seen, 0u) << "a new thread starts with no request context";
  EXPECT_EQ(current_trace_id(), 11u);
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("serve.shed"), "duet_serve_shed");
  EXPECT_EQ(prometheus_name("a-b.c d"), "duet_a_b_c_d");
  EXPECT_EQ(prometheus_name("ok_name"), "duet_ok_name");
}

TEST(Prometheus, ExposesCounterGaugeHistogram) {
  ScopedTelemetry on(true);
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.reset();
  counter("promtest.hits").add(3);
  gauge("promtest.depth").set(2.5);
  Histogram& h = histogram("promtest.latency_us", {10.0, 100.0, 1000.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(5000.0);

  const std::string text = to_prometheus_text(reg);
  EXPECT_NE(text.find("# TYPE duet_promtest_hits counter"), std::string::npos);
  EXPECT_NE(text.find("duet_promtest_hits 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE duet_promtest_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("duet_promtest_depth 2.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE duet_promtest_latency_us histogram"),
            std::string::npos);
  // Cumulative buckets: le="10" holds 1, le="100" holds 2, le="1000" still
  // 2, +Inf equals _count.
  EXPECT_NE(text.find("duet_promtest_latency_us_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("duet_promtest_latency_us_bucket{le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("duet_promtest_latency_us_bucket{le=\"1000\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("duet_promtest_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("duet_promtest_latency_us_count 3"), std::string::npos);
  reg.reset();
}

TEST(Prometheus, EveryLineIsWellFormed) {
  ScopedTelemetry on(true);
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.reset();
  counter("promtest.grammar").add(1);
  const std::string text = to_prometheus_text(reg);
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << "bad comment line: " << line;
    } else {
      // <name or name{labels}> SP <value>
      const size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      const std::string value = line.substr(space + 1);
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      EXPECT_EQ(*end, '\0') << "unparsable sample value in: " << line;
      EXPECT_EQ(line.rfind("duet_", 0), 0u)
          << "sample must carry the duet_ prefix: " << line;
    }
  }
  reg.reset();
}

}  // namespace
}  // namespace duet::telemetry
