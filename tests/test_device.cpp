// Tests for the device layer: numeric execution fidelity, noise behaviour,
// reseeding, the interconnect, and the SimClock.

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "device/calibration.hpp"
#include "device/device.hpp"
#include "device/sim_clock.hpp"
#include "models/model_zoo.hpp"

namespace duet {
namespace {

TEST(Device, ExecuteMatchesInterpreter) {
  Graph g = models::build_siamese(models::SiameseConfig::tiny());
  DevicePair devices = make_default_device_pair(1);
  const CompiledSubgraph cs =
      compile_for_device(g, DeviceKind::kCpu, CompileOptions::compiler_defaults(),
                         devices.cpu->params());

  Rng rng(4);
  const auto feeds = models::make_random_feeds(g, rng);
  // Remap feeds to compiled graph inputs (positional).
  std::map<NodeId, Tensor> remapped;
  const auto src = g.input_ids();
  const auto dst = cs.graph().input_ids();
  for (size_t i = 0; i < src.size(); ++i) remapped[dst[i]] = feeds.at(src[i]);

  Device::RunResult rr = devices.cpu->execute(cs, remapped, false);
  const auto expect = evaluate_graph(g, feeds);
  ASSERT_EQ(rr.outputs.size(), expect.size());
  EXPECT_TRUE(Tensor::allclose(rr.outputs[0], expect[0], 1e-3f, 1e-4f));
  EXPECT_GT(rr.modeled_time_s, 0.0);
}

TEST(Device, WrongDeviceSubgraphThrows) {
  Graph g = models::build_siamese(models::SiameseConfig::tiny());
  DevicePair devices = make_default_device_pair(2);
  const CompiledSubgraph cs =
      compile_for_device(g, DeviceKind::kGpu, CompileOptions::compiler_defaults(),
                         devices.gpu->params());
  EXPECT_THROW(devices.cpu->execute(cs, {}, false), Error);
}

TEST(Device, NoiselessTimeIsDeterministic) {
  Graph g = models::build_mtdnn(models::MtDnnConfig::tiny());
  DevicePair devices = make_default_device_pair(3);
  const CompiledSubgraph cs =
      compile_for_device(g, DeviceKind::kGpu, CompileOptions::compiler_defaults(),
                         devices.gpu->params());
  const double t1 = devices.gpu->modeled_time(cs, false);
  const double t2 = devices.gpu->modeled_time(cs, false);
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_DOUBLE_EQ(t1, cs.est_total_time_s());
}

TEST(Device, NoiseCentersOnDeterministicTime) {
  Graph g = models::build_mtdnn(models::MtDnnConfig::tiny());
  DevicePair devices = make_default_device_pair(4);
  const CompiledSubgraph cs =
      compile_for_device(g, DeviceKind::kCpu, CompileOptions::compiler_defaults(),
                         devices.cpu->params());
  const double base = cs.est_total_time_s();
  LatencyRecorder rec;
  for (int i = 0; i < 3000; ++i) {
    rec.add(devices.cpu->modeled_time(cs, true));
  }
  const SummaryStats s = rec.summarize();
  EXPECT_NEAR(s.mean, base, base * 0.05);
  EXPECT_GT(s.stddev, 0.0);
}

TEST(Device, ReseedReproducesNoiseStream) {
  Graph g = models::build_siamese(models::SiameseConfig::tiny());
  DevicePair devices = make_default_device_pair(5);
  const CompiledSubgraph cs =
      compile_for_device(g, DeviceKind::kCpu, CompileOptions::compiler_defaults(),
                         devices.cpu->params());
  devices.cpu->reseed(99);
  std::vector<double> first;
  for (int i = 0; i < 10; ++i) first.push_back(devices.cpu->modeled_time(cs, true));
  devices.cpu->reseed(99);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(devices.cpu->modeled_time(cs, true), first[static_cast<size_t>(i)]);
  }
}

TEST(Device, PairAccessors) {
  DevicePair devices = make_default_device_pair(6);
  EXPECT_EQ(devices.device(DeviceKind::kCpu).kind(), DeviceKind::kCpu);
  EXPECT_EQ(devices.device(DeviceKind::kGpu).kind(), DeviceKind::kGpu);
  EXPECT_NE(devices.link, nullptr);
}

// --- interconnect ----------------------------------------------------------------

TEST(Interconnect, TransferCopiesPayload) {
  Interconnect link(pcie3_x16(), 0.1, 7);
  Tensor t = Tensor::full(Shape{8}, 3.0f);
  double seconds = 0.0;
  Tensor moved = link.transfer(t, false, &seconds);
  EXPECT_GT(seconds, 0.0);
  EXPECT_TRUE(Tensor::allclose(moved, t));
  // Deep copy: mutating the original does not affect the moved tensor.
  t.data<float>()[0] = -1.0f;
  EXPECT_EQ(moved.data<float>()[0], 3.0f);
}

TEST(Interconnect, AccountsTraffic) {
  Interconnect link(pcie3_x16(), 0.1, 8);
  link.transfer_time(1000, false);
  link.transfer_time(2000, false);
  EXPECT_EQ(link.total_bytes(), 3000u);
  EXPECT_EQ(link.total_transfers(), 2u);
}

TEST(Interconnect, SpikesOnlyWithNoise) {
  Interconnect link(pcie3_x16(), 0.0, 9);
  link.set_spikes(1.0, 1e-3, 1e-3);  // always spike when noisy
  const double quiet = link.transfer_time(100, false);
  const double spiky = link.transfer_time(100, true);
  EXPECT_NEAR(spiky - quiet, 1e-3, 1e-5);
}

TEST(Interconnect, NoiseTailIsOneSided) {
  Interconnect link(pcie3_x16(), 0.2, 10);
  LatencyRecorder rec;
  for (int i = 0; i < 5000; ++i) rec.add(link.transfer_time(1 << 20, true));
  const SummaryStats s = rec.summarize();
  const double base = transfer_time_seconds(1 << 20, pcie3_x16());
  EXPECT_NEAR(s.p50, base, base * 0.05);
  EXPECT_GT(s.max - s.p50, s.p50 - s.min);  // log-normal upper tail
}

// --- sim clock ----------------------------------------------------------------------

TEST(SimClock, AdvanceSemantics) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance_to(1.0);  // no-op: already later
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance_to(2.0);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  EXPECT_THROW(clock.advance(-1.0), Error);
  clock.reset();
  EXPECT_EQ(clock.now(), 0.0);
}

}  // namespace
}  // namespace duet
