// Tests for the static verification layer (src/analysis): the graph
// verifier's invariant rules against deliberately corrupted graphs, the
// checked-mode pass instrumentation (which pass broke which invariant on
// which node), and the partition/placement/plan validators against corrupted
// scheduling artifacts.

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/graph_verifier.hpp"
#include "analysis/plan_validator.hpp"
#include "compiler/pass.hpp"
#include "duet/engine.hpp"
#include "graph/builder.hpp"
#include "models/model_zoo.hpp"
#include "partition/partitioner.hpp"
#include "runtime/plan.hpp"

namespace duet {
namespace {

// x -> dense -> (relu -> relu | sigmoid -> sigmoid) -> add: one sequential
// cut, one two-branch multi-path phase, one joining cut — the smallest graph
// whose partition exercises cross-device plans.
Graph branchy_graph() {
  GraphBuilder b("branchy");
  const NodeId x = b.input(Shape{1, 16}, "x");
  const NodeId d = b.dense(x, 8);
  const NodeId a = b.relu(b.relu(d));
  const NodeId s = b.sigmoid(b.sigmoid(d));
  return b.finish({b.add(a, s)});
}

NodeId first_compute_node(const Graph& g) {
  for (const Node& n : g.nodes()) {
    if (!n.is_input() && !n.is_constant()) return n.id;
  }
  return kInvalidNode;
}

// --- graph rules ----------------------------------------------------------------

TEST(GraphVerifier, CleanGraphVerifies) {
  const VerifyResult r = verify_graph(branchy_graph());
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.error_count(), 0u);
}

TEST(GraphVerifier, ZooModelsVerifyClean) {
  const Graph g = models::build_wide_deep(models::WideDeepConfig::tiny());
  const VerifyResult r = verify_graph(g);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(GraphVerifier, CycleIsCaught) {
  Graph g = branchy_graph();
  const NodeId victim = first_compute_node(g);
  // Point an input at a later node: with dense topological ids, a forward
  // edge is exactly how a cycle manifests.
  g.mutable_node(victim).inputs[0] = static_cast<NodeId>(g.num_nodes() - 1);
  const VerifyResult r = verify_graph(g);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.has_error("acyclicity")) << r.to_string();
  bool attributed = false;
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == "acyclicity" && d.node == victim) attributed = true;
  }
  EXPECT_TRUE(attributed) << "diagnostic must name the offending node";
}

TEST(GraphVerifier, DanglingInputIsCaught) {
  Graph g = branchy_graph();
  g.mutable_node(first_compute_node(g)).inputs[0] = 9999;
  const VerifyResult r = verify_graph(g);
  EXPECT_TRUE(r.has_error("dangling-input")) << r.to_string();
}

TEST(GraphVerifier, ShapeMismatchIsCaught) {
  Graph g = branchy_graph();
  const NodeId victim = first_compute_node(g);
  g.mutable_node(victim).out_shape = Shape{3, 3, 3};
  const VerifyResult r = verify_graph(g);
  ASSERT_TRUE(r.has_error("type-consistency")) << r.to_string();
  bool attributed = false;
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == "type-consistency" && d.node == victim) attributed = true;
  }
  EXPECT_TRUE(attributed);
}

TEST(GraphVerifier, UnboundConstantIsCaught) {
  Graph g = branchy_graph();
  const std::vector<NodeId> consts = g.constant_ids();
  ASSERT_FALSE(consts.empty());
  g.mutable_node(consts[0]).value = Tensor();
  const VerifyResult r = verify_graph(g);
  EXPECT_TRUE(r.has_error("terminal-value")) << r.to_string();
}

TEST(GraphVerifier, ArityViolationIsCaught) {
  Graph g = branchy_graph();
  Node& add_node = g.mutable_node(static_cast<NodeId>(g.num_nodes() - 1));
  ASSERT_EQ(add_node.op, OpType::kAdd);
  add_node.inputs.pop_back();  // add with one operand
  const VerifyResult r = verify_graph(g);
  EXPECT_TRUE(r.has_error("arity")) << r.to_string();
}

TEST(GraphVerifier, StaleConsumerIndexIsCaught) {
  Graph g = branchy_graph();
  // Rewire the final add's first operand without updating the adjacency
  // lists — the kind of surgery bug the consumer-index rule exists for.
  Node& add_node = g.mutable_node(static_cast<NodeId>(g.num_nodes() - 1));
  add_node.inputs[0] = g.input_ids()[0];
  const VerifyResult r = verify_graph(g);
  EXPECT_TRUE(r.has_error("consumer-index")) << r.to_string();
}

// --- pass instrumentation -------------------------------------------------------

TEST(PassInstrumentation, BrokenPassIsAttributed) {
  PassManager pm;
  pm.add("benign", [](const Graph& g) { return g; });
  pm.add("break-shape", [](const Graph& g) {
    Graph out = g;
    out.mutable_node(first_compute_node(out)).out_shape = Shape{7};
    return out;
  });
  try {
    ScopedVerification checked(true);
    pm.run(branchy_graph());
    FAIL() << "checked mode must reject the broken pass";
  } catch (const VerifyError& e) {
    ASSERT_FALSE(e.diagnostics().empty());
    bool found = false;
    for (const Diagnostic& d : e.diagnostics()) {
      if (d.rule == "type-consistency" && d.context == "pass break-shape") {
        found = true;
      }
    }
    EXPECT_TRUE(found) << e.what();
  }
}

TEST(PassInstrumentation, OptOutSkipsTheVerifier) {
  PassManager pm;
  pm.add("break-shape", [](const Graph& g) {
    Graph out = g;
    out.mutable_node(first_compute_node(out)).out_shape = Shape{7};
    return out;
  });
  // A wrong shape passes the cheap structural validate(); only the full
  // verifier catches it. Opting out must therefore not throw.
  ScopedVerification unchecked(false);
  EXPECT_NO_THROW(pm.run(branchy_graph()));
}

TEST(PassInstrumentation, StandardPipelinePreservesInvariants) {
  ScopedVerification checked(true);
  const PassManager pm = PassManager::standard(CompileOptions::compiler_defaults());
  const Graph g =
      pm.run(models::build_wide_deep(models::WideDeepConfig::tiny()));
  EXPECT_TRUE(verify_graph(g).ok());
}

// --- placement ------------------------------------------------------------------

TEST(Placement, OutOfRangeAccessThrows) {
  Placement p(3);
  EXPECT_THROW(p.of(3), Error);
  EXPECT_THROW(p.of(-1), Error);
  EXPECT_THROW(p.set(3, DeviceKind::kGpu), Error);
  EXPECT_THROW(p.flip(17), Error);
  try {
    p.set(5, DeviceKind::kCpu);
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("outside placement of size 3"),
              std::string::npos)
        << e.what();
  }
}

TEST(PlacementValidator, SizeMismatchIsCaught) {
  const Graph g = branchy_graph();
  const Partition part = partition_phased(g);
  const VerifyResult r = verify_placement(Placement(part.subgraphs.size() + 1), part);
  EXPECT_TRUE(r.has_error("placement-size")) << r.to_string();
  EXPECT_TRUE(verify_placement(Placement(part.subgraphs.size()), part).ok());
}

// --- partition ------------------------------------------------------------------

TEST(PartitionValidator, CleanPartitionVerifies) {
  const Graph g = branchy_graph();
  const VerifyResult r = verify_partition(g, partition_phased(g));
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(PartitionValidator, DoublePlacementIsCaught) {
  const Graph g = branchy_graph();
  Partition part = partition_phased(g);
  ASSERT_GE(part.subgraphs.size(), 2u);
  // Claim a node of subgraph 0 in subgraph 1 as well.
  part.subgraphs[1].parent_nodes.push_back(part.subgraphs[0].parent_nodes[0]);
  const VerifyResult r = verify_partition(g, part);
  EXPECT_TRUE(r.has_error("partition-overlap")) << r.to_string();
}

TEST(PartitionValidator, UnplacedNodeIsCaught) {
  const Graph g = branchy_graph();
  Partition part = partition_phased(g);
  part.subgraphs[0].parent_nodes.clear();
  const VerifyResult r = verify_partition(g, part);
  EXPECT_TRUE(r.has_error("partition-coverage")) << r.to_string();
}

// --- plan -----------------------------------------------------------------------

struct PlanFixture {
  Graph graph = branchy_graph();
  Partition partition;
  Placement placement;
  DevicePair devices = make_default_device_pair();
  ExecutionPlan plan;

  PlanFixture() {
    partition = partition_phased(graph);
    placement = Placement(partition.subgraphs.size(), DeviceKind::kCpu);
    // Put one multi-path branch on the GPU so the plan has cross-device
    // edges (in: from the sequential producer; out: into the join).
    for (const Phase& phase : partition.phases) {
      if (phase.type == PhaseType::kMultiPath) {
        placement.set(phase.subgraphs.back(), DeviceKind::kGpu);
        break;
      }
    }
    plan = ExecutionPlan::build(graph, partition, placement, devices,
                                CompileOptions::compiler_defaults());
  }

  // PlanView holds const references, so a corrupted view is built by
  // substituting one copied-and-mutated vector while borrowing the rest.
  PlanView view_with_transfers(const std::vector<TransferStep>& transfers) const {
    return PlanView{plan.parent(),    plan.partition(), plan.placement(),
                    plan.subgraphs(), plan.consumers(), transfers,
                    plan.step_order()};
  }
  PlanView view_with_subgraphs(const std::vector<PlannedSubgraph>& subgraphs) const {
    return PlanView{plan.parent(), plan.partition(),  plan.placement(),
                    subgraphs,     plan.consumers(),  plan.transfers(),
                    plan.step_order()};
  }
  PlanView view_with_order(const std::vector<int>& order) const {
    return PlanView{plan.parent(),    plan.partition(), plan.placement(),
                    plan.subgraphs(), plan.consumers(), plan.transfers(),
                    order};
  }
};

TEST(PlanValidator, CleanPlanVerifies) {
  PlanFixture f;
  const VerifyResult r = verify_plan(f.plan);
  EXPECT_TRUE(r.ok()) << r.to_string();
  // The GPU branch reads one boundary value and feeds one: exactly two
  // cross-device edges, each with exactly one transfer step.
  EXPECT_EQ(f.plan.transfers().size(), 2u);
  EXPECT_EQ(f.plan.step_order().size(), f.plan.subgraphs().size());
}

TEST(PlanValidator, MissingTransferIsCaught) {
  PlanFixture f;
  std::vector<TransferStep> transfers = f.plan.transfers();
  ASSERT_FALSE(transfers.empty());
  const TransferStep dropped = transfers.back();
  transfers.pop_back();
  const VerifyResult r = verify_plan(f.view_with_transfers(transfers));
  ASSERT_TRUE(r.has_error("missing-transfer")) << r.to_string();
  bool attributed = false;
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == "missing-transfer" && d.subgraph == dropped.dst_subgraph) {
      attributed = true;
    }
  }
  EXPECT_TRUE(attributed) << "diagnostic must name the consuming subgraph";
}

TEST(PlanValidator, DuplicateTransferIsCaught) {
  PlanFixture f;
  std::vector<TransferStep> transfers = f.plan.transfers();
  transfers.push_back(transfers.front());
  EXPECT_TRUE(
      verify_plan(f.view_with_transfers(transfers)).has_error("duplicate-transfer"));
}

TEST(PlanValidator, SameDeviceTransferIsCaught) {
  PlanFixture f;
  // Fabricate a transfer along a real dependency edge that stays on one
  // device: the CPU branch into the (CPU) join subgraph.
  int cpu_branch = -1;
  for (const Phase& phase : f.partition.phases) {
    if (phase.type == PhaseType::kMultiPath) {
      cpu_branch = phase.subgraphs.front();
      break;
    }
  }
  ASSERT_GE(cpu_branch, 0);
  ASSERT_EQ(f.placement.of(cpu_branch), DeviceKind::kCpu);
  const Subgraph& sub = f.partition.subgraph(cpu_branch);
  std::vector<TransferStep> transfers = f.plan.transfers();
  transfers.push_back({cpu_branch,
                       static_cast<int>(f.partition.subgraphs.size()) - 1,
                       sub.boundary_outputs[0], 0});
  EXPECT_TRUE(verify_plan(f.view_with_transfers(transfers))
                  .has_error("same-device-transfer"));
}

TEST(PlanValidator, UseBeforeDefIsCaught) {
  PlanFixture f;
  std::vector<PlannedSubgraph> subgraphs = f.plan.subgraphs();
  // Drop the declared dependencies of the final (join) subgraph while its
  // feeds still consume the branches' values.
  ASSERT_FALSE(subgraphs.back().dep_subgraphs.empty());
  subgraphs.back().dep_subgraphs.clear();
  EXPECT_TRUE(
      verify_plan(f.view_with_subgraphs(subgraphs)).has_error("use-before-def"));
}

TEST(PlanValidator, StepOrderViolationIsCaught) {
  PlanFixture f;
  std::vector<int> order = f.plan.step_order();
  std::reverse(order.begin(), order.end());
  EXPECT_TRUE(verify_plan(f.view_with_order(order)).has_error("step-order"));
}

// --- end to end -----------------------------------------------------------------

TEST(CheckedMode, EngineValidatesItsOwnArtifacts) {
  ScopedVerification checked(true);
  DuetEngine engine(models::build_wide_deep(models::WideDeepConfig::tiny()));
  EXPECT_TRUE(verify_partition(engine.model(), engine.partition()).ok());
  EXPECT_TRUE(verify_plan(engine.plan()).ok());
}

}  // namespace
}  // namespace duet
