// Tests for the analytic device cost model: monotonicity, launch-overhead
// behaviour for sequential ops, batch-occupancy scaling, layout bonus,
// framework penalties, and the transfer model.

#include <gtest/gtest.h>

#include "compiler/cost_model.hpp"
#include "device/calibration.hpp"
#include "graph/builder.hpp"

namespace duet {
namespace {

double time_of(const Graph& g, NodeId id, const DeviceCostParams& p,
               const CompileOptions& o = CompileOptions::compiler_defaults()) {
  return node_time_seconds(g, g.node(id), p, o);
}

TEST(CostModel, MoreFlopsCostMore) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 128});
  const NodeId small = b.dense(x, 64);
  const NodeId big = b.dense(x, 4096);
  const Graph& g = b.graph();
  const DeviceCostParams cpu = xeon_gold_6152();
  EXPECT_LT(time_of(g, small, cpu), time_of(g, big, cpu));
}

TEST(CostModel, LongerSequenceCostsMoreOnGpuThanCpuRelative) {
  // The paper's core asymmetry: RNN time on GPU is launch-bound, so the
  // GPU/CPU ratio for an LSTM is far worse than for a conv.
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 100, 256});
  const NodeId l = b.lstm(x, 256);
  const NodeId img = b.input(Shape{1, 3, 224, 224});
  const NodeId c = b.conv2d(img, 64, 7, 2, 3);
  const Graph& g = b.graph();
  const DeviceCostParams cpu = xeon_gold_6152();
  const DeviceCostParams gpu = titan_v();
  const double rnn_ratio = time_of(g, l, gpu) / time_of(g, l, cpu);
  const double conv_ratio = time_of(g, c, gpu) / time_of(g, c, cpu);
  EXPECT_GT(rnn_ratio, 1.0);   // GPU slower on the RNN
  EXPECT_LT(conv_ratio, 0.3);  // GPU much faster on the conv
}

TEST(CostModel, MetadataOpsFree) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{2, 6});
  const NodeId r = b.reshape(x, Shape{3, 4});
  const NodeId f = b.flatten(x);
  const Graph& g = b.graph();
  EXPECT_EQ(time_of(g, r, titan_v()), 0.0);
  EXPECT_EQ(time_of(g, f, xeon_gold_6152()), 0.0);
}

TEST(CostModel, BatchImprovesGpuThroughputMoreThanCpu) {
  const auto lstm_time = [&](int64_t batch, const DeviceCostParams& p) {
    GraphBuilder b("t");
    const NodeId x = b.input(Shape{batch, 50, 128});
    const NodeId l = b.lstm(x, 128);
    return time_of(b.graph(), l, p) / static_cast<double>(batch);
  };
  const DeviceCostParams cpu = xeon_gold_6152();
  const DeviceCostParams gpu = titan_v();
  // Per-sample GPU time should drop much more from batch 1 to 32.
  const double gpu_gain = lstm_time(1, gpu) / lstm_time(32, gpu);
  const double cpu_gain = lstm_time(1, cpu) / lstm_time(32, cpu);
  EXPECT_GT(gpu_gain, cpu_gain * 2.0);
}

TEST(CostModel, LayoutBonusSpeedsConv) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 16, 32, 32});
  const NodeId c = b.conv2d(x, 16, 3, 1, 1);
  Graph g = b.finish({c});
  const DeviceCostParams gpu = titan_v();
  const double plain = time_of(g, c, gpu);
  Node& node = g.mutable_node(c);
  node.attrs.set("layout", std::string("NCHWc"));
  const double tagged = time_of(g, c, gpu);
  EXPECT_LT(tagged, plain);
  EXPECT_NEAR(plain / tagged, gpu.layout_bonus, 0.2);
}

TEST(CostModel, FrameworkModeSlower) {
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 512});
  const NodeId d = b.dense(x, 512);
  const Graph& g = b.graph();
  const DeviceCostParams cpu = xeon_gold_6152();
  EXPECT_GT(time_of(g, d, cpu, CompileOptions::framework()),
            time_of(g, d, cpu, CompileOptions::compiler_defaults()));
}

TEST(CostModel, MemoryBoundOpsSeeBandwidth) {
  // A huge elementwise op must be bounded by memory bandwidth, not flops.
  GraphBuilder b("t");
  const NodeId x = b.input(Shape{1, 16 * 1024 * 1024});
  const NodeId r = b.relu(x);
  const Graph& g = b.graph();
  const DeviceCostParams cpu = xeon_gold_6152();
  const double t = time_of(g, r, cpu);
  const double bytes = 2.0 * 16 * 1024 * 1024 * 4;  // read + write
  EXPECT_NEAR(t, bytes / (cpu.mem_bw_gbps * 1e9), t * 0.5);
}

TEST(CostModel, DeviceKindHelpers) {
  EXPECT_STREQ(device_kind_name(DeviceKind::kCpu), "cpu");
  EXPECT_STREQ(device_kind_name(DeviceKind::kGpu), "gpu");
  EXPECT_EQ(other_device(DeviceKind::kCpu), DeviceKind::kGpu);
  EXPECT_EQ(other_device(DeviceKind::kGpu), DeviceKind::kCpu);
}

// --- transfers -----------------------------------------------------------------------

TEST(TransferModel, LatencyLinearInSize) {
  const TransferParams link = pcie3_x16();
  const double t1 = transfer_time_seconds(1 << 20, link);
  const double t2 = transfer_time_seconds(2 << 20, link);
  const double t4 = transfer_time_seconds(4 << 20, link);
  // Equal increments in size -> equal increments in time.
  EXPECT_NEAR(t2 - t1, (t4 - t2) / 2.0, 1e-9);
}

TEST(TransferModel, SmallMessagesLatencyBound) {
  const TransferParams link = pcie3_x16();
  EXPECT_NEAR(transfer_time_seconds(64, link), link.latency_s,
              link.latency_s * 0.1);
}

TEST(TransferModel, LargeMessagesBandwidthBound) {
  const TransferParams link = pcie3_x16();
  const uint64_t size = 64ull << 20;
  const double t = transfer_time_seconds(size, link);
  EXPECT_NEAR(static_cast<double>(size) / t, link.bandwidth_gbps * 1e9,
              link.bandwidth_gbps * 1e9 * 0.05);
}

}  // namespace
}  // namespace duet
