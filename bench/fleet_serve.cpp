// Multi-tenant fleet serving bench: plan-per-bucket efficacy, registry
// cache dedup, and weighted-fair shedding under overload, emitted as
// BENCH_10.json.
//
// One ModelRegistry holds wide-deep and dlrm at max_batch 64 (wide-deep's
// crossover certificates put a placement flip inside that range, so its
// bucket table is non-trivial; dlrm stays single-bucket — the honest
// control). A structural twin of wide-deep registered under a second name
// measures the PR-4 content-addressed dedup: its registration must be 100%
// compile-cache warm. The load sweep replays the same Poisson traces
// through the virtual-time fleet twin twice — per-bucket plans vs the
// single-plan baseline — at multiples of the baseline's max-batch
// capacity; the saturating cell is the efficacy gate. A final overloaded
// leg with per-tenant deadlines shows weighted-fair shedding: bronze sheds
// first, conservation (offered = completed + shed + rejected) holds per
// class.
//
// Runs argument-free; prints the tables and writes BENCH_10.json to the
// current directory (CI uploads it as an artifact and gates on it).
//
// Acceptance: the saturating cell must clear 1.2x baseline throughput OR
// cut p99 sojourn by >= 20%; the twin registration must be fully
// compile-cache warm; the nominal (0.5x) cell sheds <= 1% in every tenant
// class; gold never sheds more than bronze under overload.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "serve/model_registry.hpp"
#include "serve/simulator.hpp"
#include "serve/workload.hpp"

namespace {

using namespace duet;

constexpr int64_t kMaxBatch = 64;
constexpr int kWorkers = 2;
constexpr int kRequests = 2048;
constexpr double kRequiredThroughputRatio = 1.2;
constexpr double kMaxP99Ratio = 0.8;
constexpr double kMaxNominalShed = 0.01;

struct SweepCell {
  double offered_x = 0.0;
  double offered_qps = 0.0;
  serve::FleetSimStats bucketed;
  serve::FleetSimStats baseline;

  double throughput_ratio() const {
    return baseline.throughput_qps > 0.0
               ? bucketed.throughput_qps / baseline.throughput_qps
               : 0.0;
  }
  double p99_ratio() const {
    return baseline.sojourn.p99 > 0.0
               ? bucketed.sojourn.p99 / baseline.sojourn.p99
               : 0.0;
  }
};

std::string leg_json(const serve::FleetSimStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"throughput_qps\":%.2f,\"p50_s\":%.6f,\"p99_s\":%.6f,"
                "\"mean_batch\":%.2f,\"completed\":%llu,\"shed\":%llu,"
                "\"rejected\":%llu}",
                s.throughput_qps, s.sojourn.p50, s.sojourn.p99, s.mean_batch,
                static_cast<unsigned long long>(s.total.completed),
                static_cast<unsigned long long>(s.total.shed),
                static_cast<unsigned long long>(s.total.rejected));
  return buf;
}

std::string tenant_json(const serve::FleetTenantStats& t) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"offered\":%llu,\"completed\":%llu,"
                "\"shed\":%llu,\"rejected\":%llu,\"shed_rate\":%.4f}",
                t.name.c_str(),
                static_cast<unsigned long long>(t.admission.offered),
                static_cast<unsigned long long>(t.admission.completed),
                static_cast<unsigned long long>(t.admission.shed),
                static_cast<unsigned long long>(t.admission.rejected),
                t.admission.shed_rate());
  return buf;
}

bool conserved(const serve::FleetSimStats& s) {
  for (const serve::FleetTenantStats& t : s.tenants) {
    if (t.admission.offered != t.admission.completed + t.admission.shed +
                                   t.admission.rejected) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bool ok = true;

  serve::ModelRegistryOptions ropts;
  ropts.max_batch = kMaxBatch;
  serve::ModelRegistry registry(ropts);
  bench::header("fleet registry: wide-deep + dlrm + structural twin");
  registry.register_model("wide-deep", models::zoo_batched_factory("wide-deep"));
  registry.register_model("dlrm", models::zoo_batched_factory("dlrm"));
  // The twin shares every subgraph with wide-deep byte-for-byte, so its
  // registration must ride the content-addressed caches end to end.
  registry.register_model("wide-deep-twin",
                          models::zoo_batched_factory("wide-deep"));
  const serve::RegistryCacheStats& cache = registry.cache_stats();
  std::printf("%s", cache.to_string().c_str());
  const serve::RegistrationCacheDelta& twin = cache.registrations.back();
  const double twin_hit_rate = twin.compile_hit_rate();
  std::printf("twin registration: compile hit rate %.3f, %llu profile misses\n",
              twin_hit_rate,
              static_cast<unsigned long long>(twin.profile_misses));

  serve::ResidentModel& demo = registry.model(0);  // wide-deep
  const double base_maxb_s = demo.baseline_service_s(kMaxBatch);
  const double bucket_maxb_s = demo.modeled_service_s(kMaxBatch);
  const double capacity_qps =
      kWorkers * static_cast<double>(kMaxBatch) / base_maxb_s;
  std::printf(
      "wide-deep buckets %s: service@%lld bucketed %.3f ms vs baseline %.3f "
      "ms; baseline capacity %.1f qps\n",
      buckets_to_string(demo.buckets()).c_str(),
      static_cast<long long>(kMaxBatch), bucket_maxb_s * 1e3,
      base_maxb_s * 1e3, capacity_qps);

  const std::vector<serve::TenantClass> tenants =
      serve::default_tenant_classes(3);
  const auto bucketed_service = [&registry](int model, int64_t batch) {
    return registry.model(model).modeled_service_s(batch);
  };
  const auto baseline_service = [&registry](int model, int64_t batch) {
    return registry.model(model).baseline_service_s(batch);
  };

  // Load sweep on the bucket-rich model, no deadlines: the two legs replay
  // identical traces, so the ratios isolate the plan-per-bucket effect.
  bench::header("plan-per-bucket load sweep: wide-deep");
  std::printf("%8s %12s %14s %14s %12s %10s\n", "offered", "offered qps",
              "bucketed qps", "baseline qps", "throughput x", "p99 ratio");
  const std::vector<double> kLoads = {0.5, 1.0, 2.0, 3.0};
  std::vector<SweepCell> cells;
  for (double load : kLoads) {
    SweepCell c;
    c.offered_x = load;
    c.offered_qps = load * capacity_qps;
    Rng rng(1234);  // same arrival stream shape per cell rate
    const std::vector<double> arrivals =
        serve::poisson_trace(c.offered_qps, kRequests, rng);
    std::vector<serve::FleetSimRequest> reqs;
    reqs.reserve(arrivals.size());
    for (size_t i = 0; i < arrivals.size(); ++i) {
      serve::FleetSimRequest r;
      r.arrival_s = arrivals[i];
      r.tenant = static_cast<int>(i % tenants.size());
      r.model = 0;  // wide-deep
      reqs.push_back(r);
    }
    serve::FleetSimConfig sim;
    sim.workers = kWorkers;
    sim.queue_capacity = 512;
    sim.tenants = tenants;
    sim.max_batch = kMaxBatch;
    c.bucketed = serve::simulate_fleet(reqs, bucketed_service, sim);
    c.baseline = serve::simulate_fleet(reqs, baseline_service, sim);
    std::printf("%7.1fx %12.1f %14.1f %14.1f %11.2fx %10.2f\n", load,
                c.offered_qps, c.bucketed.throughput_qps,
                c.baseline.throughput_qps, c.throughput_ratio(),
                c.p99_ratio());
    if (!conserved(c.bucketed) || !conserved(c.baseline)) {
      std::printf("ERROR: per-tenant conservation violated at %.1fx\n", load);
      ok = false;
    }
    cells.push_back(c);
  }
  const SweepCell& saturated = cells.back();
  const SweepCell& nominal = cells.front();
  double nominal_worst_shed = 0.0;
  for (const serve::FleetTenantStats& t : nominal.bucketed.tenants) {
    nominal_worst_shed = std::max(nominal_worst_shed, t.admission.shed_rate());
  }

  // Overload with per-tenant deadlines across both models: weighted-fair
  // shedding in action. Gold (highest weight) must never shed more than
  // bronze.
  bench::header("weighted-fair shedding: 2x overload, deadlines on");
  const double mixed_deadline_s = 12.0 * demo.baseline_service_s(1);
  const std::vector<serve::TenantClass> strict_tenants =
      serve::default_tenant_classes(3, mixed_deadline_s);
  // Coalescing is capped low here: giant cross-tenant batches average the
  // classes together, while small batches make the weighted pickup order —
  // and therefore who waits past their deadline — visible. Overload is
  // relative to what the bucketed plans sustain at that cap, so the pool
  // genuinely cannot keep up and the shed ordering is the policy's.
  const int64_t kFairBatch = 8;
  const double mixed_service_s =
      (demo.modeled_service_s(kFairBatch) +
       registry.model(1).modeled_service_s(kFairBatch)) /
      2.0;
  const double mixed_capacity_qps =
      kWorkers * static_cast<double>(kFairBatch) / mixed_service_s;
  const double mixed_qps = 2.0 * mixed_capacity_qps;
  Rng mixed_rng(4321);
  const std::vector<double> mixed_arrivals =
      serve::poisson_trace(mixed_qps, kRequests, mixed_rng);
  std::vector<serve::FleetSimRequest> mixed_reqs;
  mixed_reqs.reserve(mixed_arrivals.size());
  for (size_t i = 0; i < mixed_arrivals.size(); ++i) {
    serve::FleetSimRequest r;
    r.arrival_s = mixed_arrivals[i];
    r.tenant = static_cast<int>(i % strict_tenants.size());
    r.model = static_cast<int>(i % 2);  // wide-deep / dlrm
    mixed_reqs.push_back(r);
  }
  serve::FleetSimConfig mixed_sim;
  mixed_sim.workers = kWorkers;
  mixed_sim.queue_capacity = 512;
  mixed_sim.tenants = strict_tenants;
  mixed_sim.max_batch = kFairBatch;
  const serve::FleetSimStats fairness =
      serve::simulate_fleet(mixed_reqs, bucketed_service, mixed_sim);
  double gold_shed = 0.0;
  double bronze_shed = 0.0;
  for (const serve::FleetTenantStats& t : fairness.tenants) {
    std::printf("  tenant %-8s offered %5llu completed %5llu shed %5llu "
                "rejected %5llu (shed %.2f%%)\n",
                t.name.c_str(),
                static_cast<unsigned long long>(t.admission.offered),
                static_cast<unsigned long long>(t.admission.completed),
                static_cast<unsigned long long>(t.admission.shed),
                static_cast<unsigned long long>(t.admission.rejected),
                100.0 * t.admission.shed_rate());
    if (t.name == "gold") gold_shed = t.admission.shed_rate();
    if (t.name == "bronze") bronze_shed = t.admission.shed_rate();
  }
  const bool priority_ok = gold_shed <= bronze_shed;
  const bool fairness_conserved = conserved(fairness);
  if (!fairness_conserved) {
    std::printf("ERROR: per-tenant conservation violated in fairness leg\n");
    ok = false;
  }

  // --- BENCH_10.json ---------------------------------------------------
  std::string models_json;
  for (size_t m = 0; m < registry.size(); ++m) {
    serve::ResidentModel& rm = registry.model(static_cast<int>(m));
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"buckets\":\"%s\","
                  "\"service_b1_s\":%.6f,\"bucketed_service_maxb_s\":%.6f,"
                  "\"baseline_service_maxb_s\":%.6f}",
                  rm.name().c_str(), buckets_to_string(rm.buckets()).c_str(),
                  rm.modeled_service_s(1), rm.modeled_service_s(kMaxBatch),
                  rm.baseline_service_s(kMaxBatch));
    if (!models_json.empty()) models_json += ",";
    models_json += buf;
  }
  std::string sweep_json;
  for (const SweepCell& c : cells) {
    char head[128];
    std::snprintf(head, sizeof(head),
                  "{\"offered_x\":%.2f,\"offered_qps\":%.2f,", c.offered_x,
                  c.offered_qps);
    char tail[128];
    std::snprintf(tail, sizeof(tail),
                  ",\"throughput_ratio\":%.3f,\"p99_ratio\":%.3f}",
                  c.throughput_ratio(), c.p99_ratio());
    if (!sweep_json.empty()) sweep_json += ",";
    sweep_json += std::string(head) + "\"bucketed\":" + leg_json(c.bucketed) +
                  ",\"baseline\":" + leg_json(c.baseline) + tail;
  }
  std::string fairness_tenants_json;
  for (const serve::FleetTenantStats& t : fairness.tenants) {
    if (!fairness_tenants_json.empty()) fairness_tenants_json += ",";
    fairness_tenants_json += tenant_json(t);
  }

  std::FILE* out = std::fopen("BENCH_10.json", "w");
  if (out == nullptr) {
    std::printf("ERROR: cannot write BENCH_10.json\n");
    return 1;
  }
  std::fprintf(
      out,
      "{\"max_batch\":%lld,\"workers\":%d,\"requests\":%d,"
      "\"models\":[%s],"
      "\"registry\":{\"compile_hits\":%llu,\"compile_misses\":%llu,"
      "\"profile_hits\":%llu,\"profile_misses\":%llu,"
      "\"compile_dedup_ratio\":%.4f},"
      "\"twin\":{\"model\":\"%s\",\"compile_hits\":%llu,"
      "\"compile_misses\":%llu,\"profile_misses\":%llu,"
      "\"compile_hit_rate\":%.4f},"
      "\"sweep\":[%s],"
      "\"fairness\":{\"offered_qps\":%.2f,\"deadline_s\":%.6f,"
      "\"tenants\":[%s],\"conservation_ok\":%s,\"priority_ok\":%s},"
      "\"gate\":{\"required_throughput_ratio\":%.2f,\"max_p99_ratio\":%.2f,"
      "\"throughput_ratio\":%.3f,\"p99_ratio\":%.3f,"
      "\"twin_compile_hit_rate\":%.4f,\"nominal_worst_shed\":%.4f}}\n",
      static_cast<long long>(kMaxBatch), kWorkers, kRequests,
      models_json.c_str(),
      static_cast<unsigned long long>(cache.compile_hits),
      static_cast<unsigned long long>(cache.compile_misses),
      static_cast<unsigned long long>(cache.profile_hits),
      static_cast<unsigned long long>(cache.profile_misses),
      cache.compile_dedup_ratio(), twin.model.c_str(),
      static_cast<unsigned long long>(twin.compile_hits),
      static_cast<unsigned long long>(twin.compile_misses),
      static_cast<unsigned long long>(twin.profile_misses), twin_hit_rate,
      sweep_json.c_str(), mixed_qps, mixed_deadline_s,
      fairness_tenants_json.c_str(), fairness_conserved ? "true" : "false",
      priority_ok ? "true" : "false", kRequiredThroughputRatio, kMaxP99Ratio,
      saturated.throughput_ratio(), saturated.p99_ratio(), twin_hit_rate,
      nominal_worst_shed);
  std::fclose(out);
  std::printf("\nwrote BENCH_10.json\n");

  if (saturated.throughput_ratio() < kRequiredThroughputRatio &&
      saturated.p99_ratio() > kMaxP99Ratio) {
    std::printf(
        "ERROR: plan-per-bucket gate failed: %.2fx throughput (< %.1fx) and "
        "p99 ratio %.2f (> %.2f)\n",
        saturated.throughput_ratio(), kRequiredThroughputRatio,
        saturated.p99_ratio(), kMaxP99Ratio);
    ok = false;
  }
  if (twin_hit_rate < 0.999) {
    std::printf("ERROR: twin registration compile hit rate %.3f below 1.0\n",
                twin_hit_rate);
    ok = false;
  }
  if (nominal_worst_shed > kMaxNominalShed) {
    std::printf("ERROR: nominal-load shed rate %.2f%% above the %.0f%% bar\n",
                100.0 * nominal_worst_shed, 100.0 * kMaxNominalShed);
    ok = false;
  }
  if (!priority_ok) {
    std::printf("ERROR: gold shed %.2f%% exceeds bronze %.2f%% under "
                "overload\n",
                100.0 * gold_shed, 100.0 * bronze_shed);
    ok = false;
  }
  return ok ? 0 : 1;
}
