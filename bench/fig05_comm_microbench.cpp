// Reproduces Fig. 5: CPU<->GPU communication cost as a function of message
// size — CUDA point-to-point bulk transfers over PCIe 3.0 in the paper,
// the calibrated PcieLink model here.
//
// Paper reference: latency grows almost linearly with message size; small
// transfers are dominated by the fixed base latency.

#include <cinttypes>

#include "bench_util.hpp"
#include "common/string_util.hpp"
#include "device/calibration.hpp"
#include "device/interconnect.hpp"

int main() {
  using namespace duet;
  using namespace duet::bench;

  Interconnect link(pcie3_x16(), link_noise_sigma(), 7);

  header("Fig.5 — CPU-GPU transfer latency vs message size (PCIe 3.0 x16)");
  TextTable t({"message size", "latency (mean of 100)", "effective bandwidth"});
  for (uint64_t size = 1024; size <= (64ull << 20); size *= 4) {
    LatencyRecorder rec;
    for (int i = 0; i < 100; ++i) {
      rec.add(link.transfer_time(size, /*with_noise=*/true));
    }
    const double mean = rec.summarize().mean;
    char bw[64];
    std::snprintf(bw, sizeof(bw), "%.2f GB/s",
                  static_cast<double>(size) / mean / 1e9);
    t.add_row({human_bytes(size), human_time(mean), bw});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "total transferred: %s in %" PRIu64 " transfers\n"
      "paper reference: near-linear latency growth; ~12 GB/s saturated, "
      "base latency ~10 us\n",
      human_bytes(link.total_bytes()).c_str(), link.total_transfers());
  return 0;
}
