// Reproduces Fig. 12: P50 / P99 / P99.9 latency of TVM-GPU vs DUET on the
// three heterogeneous models, 5000 runs at batch 1.
//
// Paper reference: DUET keeps 1.3-2.4x at P99 and 1.1-2.1x at P99.9; the
// P99.9 gains are smaller because the CPU-GPU interconnect adds variance.

#include "bench_util.hpp"
#include "models/model_zoo.hpp"

namespace {

constexpr int kRuns = 5000;

void run_model(const std::string& name, duet::Graph model) {
  using namespace duet;
  using namespace duet::bench;

  DuetEngine engine(std::move(model));
  Baseline tvm_gpu(engine.model(), BaselineKind::kTvmGpu, engine.devices());

  LatencyRecorder duet_rec;
  LatencyRecorder gpu_rec;
  for (int i = 0; i < kRuns; ++i) {
    duet_rec.add(engine.latency(/*with_noise=*/true));
    gpu_rec.add(tvm_gpu.latency(/*with_noise=*/true));
  }
  const SummaryStats d = duet_rec.summarize();
  const SummaryStats g = gpu_rec.summarize();

  header("Fig.12 — " + name + " tail latency (" + std::to_string(kRuns) +
         " runs)");
  TextTable t({"percentile", "TVM-GPU", "DUET", "speedup"});
  t.add_row({"P50", ms(g.p50), ms(d.p50), speedup(g.p50, d.p50)});
  t.add_row({"P99", ms(g.p99), ms(d.p99), speedup(g.p99, d.p99)});
  t.add_row({"P99.9", ms(g.p999), ms(d.p999), speedup(g.p999, d.p999)});
  std::printf("%s", t.render().c_str());
}

}  // namespace

int main() {
  using namespace duet::models;
  run_model("Wide-and-Deep", build_wide_deep());
  run_model("Siamese", build_siamese());
  run_model("MT-DNN", build_mtdnn());
  std::printf(
      "\npaper reference: 1.3-2.4x at P99, 1.1-2.1x at P99.9 (tails shrink "
      "because PCIe adds variance to DUET)\n");
  return 0;
}
