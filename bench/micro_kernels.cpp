// Google-benchmark micro-benchmarks of the reference kernel library (real
// wall time on the host). These are not paper figures; they document the
// numeric substrate's performance and catch kernel regressions.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "tensor/kernels.hpp"

namespace {

using duet::Rng;
using duet::Shape;
using duet::Tensor;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(duet::kernels::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2d(benchmark::State& state) {
  const int64_t size = state.range(0);
  Rng rng(2);
  const Tensor x = Tensor::randn(Shape{1, 16, size, size}, rng);
  const Tensor w = Tensor::randn(Shape{32, 16, 3, 3}, rng);
  const Tensor bias = Tensor::zeros(Shape{32});
  for (auto _ : state) {
    benchmark::DoNotOptimize(duet::kernels::conv2d(x, w, bias, 1, 1));
  }
}
BENCHMARK(BM_Conv2d)->Arg(16)->Arg(32)->Arg(64);

void BM_LstmCell(benchmark::State& state) {
  const int64_t hidden = state.range(0);
  Rng rng(3);
  const Tensor x = Tensor::randn(Shape{1, hidden}, rng);
  duet::kernels::LstmState s{Tensor::zeros(Shape{1, hidden}),
                             Tensor::zeros(Shape{1, hidden})};
  const Tensor w_ih = Tensor::randn(Shape{hidden, 4 * hidden}, rng, 0.05f);
  const Tensor w_hh = Tensor::randn(Shape{hidden, 4 * hidden}, rng, 0.05f);
  const Tensor bias = Tensor::zeros(Shape{4 * hidden});
  for (auto _ : state) {
    benchmark::DoNotOptimize(duet::kernels::lstm_cell(x, s, w_ih, w_hh, bias));
  }
}
BENCHMARK(BM_LstmCell)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dDirect(benchmark::State& state) {
  const int64_t ch = state.range(0);
  Rng rng(6);
  const Tensor x = Tensor::randn(Shape{1, ch, 28, 28}, rng);
  const Tensor w = Tensor::randn(Shape{ch, ch, 3, 3}, rng);
  const Tensor bias = Tensor::zeros(Shape{ch});
  for (auto _ : state) {
    benchmark::DoNotOptimize(duet::kernels::conv2d_direct(x, w, bias, 1, 1));
  }
}
BENCHMARK(BM_Conv2dDirect)->Arg(8)->Arg(32);

void BM_Conv2dIm2col(benchmark::State& state) {
  const int64_t ch = state.range(0);
  Rng rng(6);
  const Tensor x = Tensor::randn(Shape{1, ch, 28, 28}, rng);
  const Tensor w = Tensor::randn(Shape{ch, ch, 3, 3}, rng);
  const Tensor bias = Tensor::zeros(Shape{ch});
  for (auto _ : state) {
    benchmark::DoNotOptimize(duet::kernels::conv2d_im2col(x, w, bias, 1, 1));
  }
}
BENCHMARK(BM_Conv2dIm2col)->Arg(8)->Arg(32);

void BM_Softmax(benchmark::State& state) {
  Rng rng(4);
  const Tensor x = Tensor::randn(Shape{64, state.range(0)}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(duet::kernels::softmax_lastdim(x));
  }
}
BENCHMARK(BM_Softmax)->Arg(128)->Arg(1024);

void BM_Attention(benchmark::State& state) {
  const int64_t model = 128;
  Rng rng(5);
  const Tensor x = Tensor::randn(Shape{1, state.range(0), model}, rng);
  const Tensor wqkv = Tensor::randn(Shape{model, 3 * model}, rng, 0.05f);
  const Tensor wo = Tensor::randn(Shape{model, model}, rng, 0.05f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(duet::kernels::multi_head_attention(x, wqkv, wo, 4));
  }
}
BENCHMARK(BM_Attention)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
