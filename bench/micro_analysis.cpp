// Google-benchmark micro-benchmarks of the dataflow analysis suite:
// liveness, arena planning, and the happens-before race check over real
// zoo plans. The suite runs at every plan build (and the race check in
// every checked-mode engine construction), so its cost must stay a small
// fraction of a plan build; these benchmarks document and guard that.

#include <benchmark/benchmark.h>

#include "analysis/liveness.hpp"
#include "analysis/memory_planner.hpp"
#include "analysis/race_checker.hpp"
#include "device/calibration.hpp"
#include "models/model_zoo.hpp"
#include "partition/partitioner.hpp"
#include "runtime/plan.hpp"

namespace {

using namespace duet;

// One mixed-placement plan per benchmark run; building it (compilation
// included) stays outside the timed loop.
ExecutionPlan make_plan(Graph graph) {
  static DevicePair devices = make_default_device_pair(7);
  const Partition partition = partition_phased(graph);
  Placement placement(partition.subgraphs.size(), DeviceKind::kCpu);
  for (size_t i = 0; i < partition.subgraphs.size(); i += 2) {
    placement.set(static_cast<int>(i), DeviceKind::kGpu);
  }
  return ExecutionPlan::build(graph, partition, placement, devices,
                              CompileOptions::compiler_defaults());
}

void BM_Liveness(benchmark::State& state) {
  const ExecutionPlan plan =
      make_plan(models::build_inception(models::InceptionConfig::tiny()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_liveness(plan));
  }
}
BENCHMARK(BM_Liveness);

void BM_MemoryPlanner(benchmark::State& state) {
  const ExecutionPlan plan =
      make_plan(models::build_inception(models::InceptionConfig::tiny()));
  const LivenessInfo live = analyze_liveness(plan);
  const HappensBefore hb(plan.subgraphs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_memory(live, hb));
  }
}
BENCHMARK(BM_MemoryPlanner);

void BM_RaceChecker(benchmark::State& state) {
  const ExecutionPlan plan =
      make_plan(models::build_inception(models::InceptionConfig::tiny()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_races(plan));
  }
}
BENCHMARK(BM_RaceChecker);

void BM_FullSuiteAtPlanBuild(benchmark::State& state) {
  // What ExecutionPlan::build pays for the attached MemoryPlan.
  const ExecutionPlan plan =
      make_plan(models::build_wide_deep(models::WideDeepConfig::tiny()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_memory(plan));
  }
}
BENCHMARK(BM_FullSuiteAtPlanBuild);

}  // namespace

BENCHMARK_MAIN();
