// Reproduces Fig. 16: Wide-and-Deep latency while varying the number of
// hidden layers in the FFN (deep) component.
//
// Paper reference: execution time barely changes — FFN is GEMM-dominated and
// cheap on both devices, so extra hidden layers are noise next to the RNN
// and CNN branches.

#include "bench_util.hpp"
#include "models/model_zoo.hpp"

int main() {
  using namespace duet;
  using namespace duet::bench;
  std::vector<std::pair<std::string, Graph>> variants;
  for (int layers : {1, 2, 4, 8}) {
    models::WideDeepConfig c;
    c.ffn_layers = layers;
    variants.emplace_back(std::to_string(layers) + " FFN layers",
                          models::build_wide_deep(c));
  }
  run_variation_sweep(
      "Fig.16 — Wide-and-Deep, varying FFN hidden layers", variants,
      "latency roughly flat across FFN depths on all engines");
  return 0;
}
