// Serving load sweep: throughput and tail sojourn of the DUET serving
// runtime versus worker count and offered load, emitted as BENCH_5.json.
//
// Each model is scheduled once by the engine; per-request modeled service
// times are drawn from the plan's noisy latency distribution (one shared
// draw vector, so every sweep cell replays identical work). The sequential
// baseline is the single-engine loop — one request in service at a time,
// back to back — and the sweep replays the same open-loop Poisson traces
// against 1/2/4/8 worker replicas at 0.5x/1.0x/2.0x of the pool's
// saturation rate, all in virtual time (the repo's benchmark convention:
// numbers depend on the calibrated cost models, not the build machine). A
// final bursty leg (flash-crowd trace with a deadline) shows the admission
// policy shedding under overload instead of collapsing.
//
// Runs argument-free; prints the table and writes BENCH_5.json to the
// current directory (CI uploads it as an artifact and gates on it).
//
// Acceptance: 4 workers at saturating load must clear 2x the sequential
// loop's throughput on every model, and nominal load must shed <= 1%.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "serve/simulator.hpp"
#include "serve/workload.hpp"

namespace {

using namespace duet;

constexpr int kRequests = 2000;
constexpr double kRequiredSpeedup4w = 2.0;
constexpr double kMaxNominalShed = 0.01;

struct Cell {
  int workers = 0;
  double offered_x = 0.0;  // multiple of the pool's saturation rate
  double offered_qps = 0.0;
  serve::ServeStats stats;
};

std::string cell_json(const Cell& c) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"workers\":%d,\"offered_x\":%.2f,\"offered_qps\":%.2f,"
      "\"throughput_qps\":%.2f,\"p50_s\":%.6f,\"p99_s\":%.6f,"
      "\"shed_rate\":%.4f,\"reject_rate\":%.4f,\"busy_frac\":%.4f}",
      c.workers, c.offered_x, c.offered_qps, c.stats.throughput_qps,
      c.stats.sojourn.p50, c.stats.sojourn.p99, c.stats.admission.shed_rate(),
      c.stats.admission.reject_rate(), c.stats.worker_busy_frac);
  return buf;
}

}  // namespace

int main() {
  const std::vector<std::string> kModels = {"wide-deep", "mtdnn"};
  const std::vector<int> kWorkers = {1, 2, 4, 8};
  const std::vector<double> kLoads = {0.5, 1.0, 2.0};

  std::string models_json;
  double worst_speedup_4w = 1e300;
  double worst_nominal_shed = 0.0;
  bool ok = true;

  for (const std::string& name : kModels) {
    DuetEngine engine{models::build_by_name(name)};

    // One shared draw of noisy per-request service times; the sequential
    // baseline is this exact workload executed back to back on one engine.
    std::vector<double> service(kRequests);
    double total_s = 0.0;
    for (int i = 0; i < kRequests; ++i) {
      service[static_cast<size_t>(i)] = engine.latency(/*with_noise=*/true);
      total_s += service[static_cast<size_t>(i)];
    }
    const double mean_service_s = total_s / kRequests;
    const double sequential_qps = kRequests / total_s;
    const auto service_of = [&service](size_t i) { return service[i]; };
    const double deadline_s = 10.0 * mean_service_s;

    bench::header("serve load sweep: " + name);
    std::printf("sequential loop baseline: %.1f qps (mean service %.3f ms)\n",
                sequential_qps, mean_service_s * 1e3);
    std::printf("%8s %10s %12s %12s %10s %8s %8s\n", "workers", "offered",
                "offered qps", "qps", "p99 ms", "shed%", "reject%");

    std::vector<Cell> cells;
    double speedup_4w = 0.0;
    double nominal_shed_4w = 0.0;
    for (int workers : kWorkers) {
      const double saturation_qps = workers / mean_service_s;
      for (double load : kLoads) {
        Cell c;
        c.workers = workers;
        c.offered_x = load;
        c.offered_qps = load * saturation_qps;
        serve::ServeSimConfig cfg;
        cfg.workers = workers;
        cfg.queue_capacity = 128;
        cfg.deadline_s = deadline_s;
        Rng rng(1234);  // same arrival stream shape per cell rate
        c.stats = serve::simulate_serving(
            serve::poisson_trace(c.offered_qps, kRequests, rng), service_of,
            cfg);
        std::printf("%8d %9.1fx %12.1f %12.1f %10.3f %7.2f%% %7.2f%%\n",
                    workers, load, c.offered_qps, c.stats.throughput_qps,
                    c.stats.sojourn.p99 * 1e3,
                    100.0 * c.stats.admission.shed_rate(),
                    100.0 * c.stats.admission.reject_rate());
        if (workers == 4 && load == 2.0) {
          speedup_4w = c.stats.throughput_qps / sequential_qps;
        }
        if (workers == 4 && load == 0.5) {
          nominal_shed_4w = c.stats.admission.shed_rate();
        }
        cells.push_back(c);
      }
    }
    std::printf("4 workers saturated: %.2fx the sequential loop\n", speedup_4w);
    worst_speedup_4w = std::min(worst_speedup_4w, speedup_4w);
    worst_nominal_shed = std::max(worst_nominal_shed, nominal_shed_4w);

    // Flash crowd: quiet 0.5x / burst 3x of a 4-worker pool, deadline on.
    serve::ServeSimConfig burst_cfg;
    burst_cfg.workers = 4;
    burst_cfg.queue_capacity = 128;
    burst_cfg.deadline_s = deadline_s;
    Rng burst_rng(99);
    const double sat4 = 4.0 / mean_service_s;
    const std::vector<double> burst_arrivals = serve::bursty_trace(
        0.5 * sat4, 3.0 * sat4, 100.0 * mean_service_s, 0.4, kRequests,
        burst_rng);
    const serve::ServeStats burst =
        serve::simulate_serving(burst_arrivals, service_of, burst_cfg);
    std::printf(
        "bursty (0.5x/3x flash crowd, 4 workers): %.1f qps, shed %.2f%%, "
        "reject %.2f%%, p99 %.3f ms\n",
        burst.throughput_qps, 100.0 * burst.admission.shed_rate(),
        100.0 * burst.admission.reject_rate(), burst.sojourn.p99 * 1e3);

    std::string sweep_json;
    for (const Cell& c : cells) {
      if (!sweep_json.empty()) sweep_json += ",";
      sweep_json += cell_json(c);
    }
    char head[512];
    std::snprintf(head, sizeof(head),
                  "{\"model\":\"%s\",\"mean_service_s\":%.6f,"
                  "\"sequential_qps\":%.2f,\"speedup_4w\":%.3f,"
                  "\"deadline_s\":%.6f,",
                  name.c_str(), mean_service_s, sequential_qps, speedup_4w,
                  deadline_s);
    char burst_json[256];
    std::snprintf(burst_json, sizeof(burst_json),
                  "\"burst\":{\"offered_qps\":%.2f,\"throughput_qps\":%.2f,"
                  "\"shed_rate\":%.4f,\"reject_rate\":%.4f,\"p99_s\":%.6f}",
                  serve::offered_qps(burst_arrivals), burst.throughput_qps,
                  burst.admission.shed_rate(), burst.admission.reject_rate(),
                  burst.sojourn.p99);
    if (!models_json.empty()) models_json += ",";
    models_json += std::string(head) + "\"sweep\":[" + sweep_json + "]," +
                   burst_json + "}";
  }

  std::FILE* out = std::fopen("BENCH_5.json", "w");
  if (out == nullptr) {
    std::printf("ERROR: cannot write BENCH_5.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\"requests\":%d,\"models\":[%s],"
               "\"gate\":{\"required_speedup_4w\":%.1f,"
               "\"worst_speedup_4w\":%.3f,\"max_nominal_shed\":%.2f,"
               "\"worst_nominal_shed\":%.4f}}\n",
               kRequests, models_json.c_str(), kRequiredSpeedup4w,
               worst_speedup_4w, kMaxNominalShed, worst_nominal_shed);
  std::fclose(out);
  std::printf("\nwrote BENCH_5.json\n");

  if (worst_speedup_4w < kRequiredSpeedup4w) {
    std::printf("ERROR: 4-worker speedup %.2fx below the %.1fx bar\n",
                worst_speedup_4w, kRequiredSpeedup4w);
    ok = false;
  }
  if (worst_nominal_shed > kMaxNominalShed) {
    std::printf("ERROR: nominal-load shed rate %.2f%% above the %.0f%% bar\n",
                100.0 * worst_nominal_shed, 100.0 * kMaxNominalShed);
    ok = false;
  }
  return ok ? 0 : 1;
}
