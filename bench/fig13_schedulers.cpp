// Reproduces Fig. 13: comparison of subgraph scheduling algorithms on
// Wide-and-Deep — Random, Round-Robin, Random+Correction, Greedy+Correction,
// and the exhaustive Ideal.
//
// Paper reference: Random and Round-Robin are clearly worse; both
// correction-based schedulers approach the Ideal; greedy initialization
// needs fewer correction iterations; greedy-correction finds the optimal
// schedule when enumeration is feasible.

#include "bench_util.hpp"
#include "device/calibration.hpp"
#include "device/interconnect.hpp"
#include "models/model_zoo.hpp"
#include "sched/scheduler.hpp"

int main() {
  using namespace duet;
  using namespace duet::bench;

  Graph model = models::build_wide_deep();
  DevicePair devices = make_default_device_pair(11);
  Partition partition = partition_phased(model);
  Profiler profiler(devices);
  const std::vector<SubgraphProfile> profiles =
      profiler.profile_partition(partition, model);
  LatencyEvaluator evaluator(partition, model, profiles, devices.link->params());

  header("Fig.13 — scheduling algorithms on Wide-and-Deep");
  TextTable t({"scheduler", "est latency", "corr. rounds", "evaluations"});

  const auto run = [&](const std::string& name, int seeds) {
    double total = 0.0;
    int rounds = 0;
    int64_t evals = 0;
    for (int s = 0; s < seeds; ++s) {
      Rng rng(100 + static_cast<uint64_t>(s));
      SchedulingContext ctx{&partition, &profiles, &evaluator, &rng};
      ScheduleResult r = make_scheduler(name)->schedule(ctx);
      total += r.est_latency_s;
      rounds += r.correction_rounds;
      evals += r.evaluations;
    }
    t.add_row({name, ms(total / seeds),
               std::to_string(rounds / seeds), std::to_string(evals / seeds)});
    return total / seeds;
  };

  run("random", 20);
  run("round-robin", 1);
  run("random+correction", 20);
  const double greedy = run("greedy-correction", 1);
  run("analytic-dp", 1);  // the §IV-C "analytic placement" alternative
  run("annealing", 5);    // unstructured search baseline
  const double ideal = run("exhaustive", 1);

  std::printf("%s", t.render().c_str());
  std::printf("greedy-correction vs ideal: %.4f%% gap\n",
              (greedy / ideal - 1.0) * 100.0);
  std::printf(
      "paper reference: random & round-robin noticeably slower; correction "
      "closes the gap; greedy-correction matches the ideal schedule\n");
  return 0;
}
