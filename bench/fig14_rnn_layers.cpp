// Reproduces Fig. 14: Wide-and-Deep latency while varying the number of
// stacked RNN layers (1/2/4/8).
//
// Paper reference: DUET achieves 2.3-2.5x over TVM-GPU and 2.9-9.8x over
// TVM-CPU; GPU latency grows fastest with layers (RNN is slow there), while
// DUET tracks the CPU-side RNN cost, hiding the CNN on the GPU.

#include "bench_util.hpp"
#include "models/model_zoo.hpp"

int main() {
  using namespace duet;
  using namespace duet::bench;
  std::vector<std::pair<std::string, Graph>> variants;
  for (int layers : {1, 2, 4, 8}) {
    models::WideDeepConfig c;
    c.rnn_layers = layers;
    variants.emplace_back(std::to_string(layers) + " RNN layers",
                          models::build_wide_deep(c));
  }
  run_variation_sweep(
      "Fig.14 — Wide-and-Deep, varying stacked RNN layers", variants,
      "2.3-2.5x vs TVM-GPU, 2.9-9.8x vs TVM-CPU; GPU curve grows steepest");
  return 0;
}
