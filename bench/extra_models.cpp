// Beyond-the-paper workloads: DLRM (recommender with parallel embedding /
// MLP bottoms — DUET schedules it heterogeneously) and Inception v1
// (four-branch modules whose branches are all GPU-friendly convs — DUET must
// recognize co-execution cannot win and fall back).

#include "bench_util.hpp"
#include "models/model_zoo.hpp"

namespace {

void run_model(const std::string& name, duet::Graph model) {
  using namespace duet;
  using namespace duet::bench;

  DuetEngine engine(std::move(model));
  Baseline tvm_cpu(engine.model(), BaselineKind::kTvmCpu, engine.devices());
  Baseline tvm_gpu(engine.model(), BaselineKind::kTvmGpu, engine.devices());
  constexpr int kRuns = 1000;
  const double d = engine_latency(engine, kRuns).mean;
  const double tc = baseline_latency(tvm_cpu, kRuns).mean;
  const double tg = baseline_latency(tvm_gpu, kRuns).mean;

  header("Extra workload — " + name);
  TextTable t({"engine", "latency", "DUET speedup"});
  t.add_row({"TVM-CPU", ms(tc), speedup(tc, d)});
  t.add_row({"TVM-GPU", ms(tg), speedup(tg, d)});
  t.add_row({"DUET", ms(d), "1.00x"});
  std::printf("%s", t.render().c_str());
  std::printf("fallback: %s | %zu subgraphs | placement %s\n",
              engine.report().fell_back ? "yes" : "no",
              engine.partition().subgraphs.size(),
              engine.report().schedule.placement.to_string().c_str());
}

}  // namespace

int main() {
  using namespace duet::models;
  run_model("DLRM (26 sparse features)", build_dlrm());
  run_model("Inception v1", build_inception());
  std::printf(
      "\nexpected: DLRM at worst matches the best single device (its "
      "branches are microseconds-scale, so PCIe usually eats the gain and "
      "DUET falls back); Inception falls back to TVM-GPU despite its "
      "four-way parallel modules\n");
  return 0;
}
