// Reproduces Table III: end-to-end latency on traditional, mostly sequential
// models (ResNet family; VGG-16 and SqueezeNet added as extra fallback
// stressors).
//
// Paper reference: DUET offers the same performance as the best-performing
// baseline (TVM-GPU) — it detects that the partitioned subgraphs cannot be
// co-executed profitably and falls back to single-device execution.

#include "bench_util.hpp"
#include "models/model_zoo.hpp"

namespace {

void run_model(const std::string& name, duet::Graph model, duet::TextTable& t) {
  using namespace duet;
  using namespace duet::bench;
  DuetEngine engine(std::move(model));
  Baseline fw_gpu(engine.model(), BaselineKind::kFrameworkGpu, engine.devices());
  Baseline tvm_cpu(engine.model(), BaselineKind::kTvmCpu, engine.devices());
  Baseline tvm_gpu(engine.model(), BaselineKind::kTvmGpu, engine.devices());
  constexpr int kRuns = 1000;
  const double d = engine_latency(engine, kRuns).mean;
  const double fg = baseline_latency(fw_gpu, kRuns).mean;
  const double tc = baseline_latency(tvm_cpu, kRuns).mean;
  const double tg = baseline_latency(tvm_gpu, kRuns).mean;
  t.add_row({name, ms(fg), ms(tc), ms(tg), ms(d),
             engine.report().fell_back ? "yes" : "no", speedup(tg, d)});
}

}  // namespace

int main() {
  using namespace duet;
  using namespace duet::bench;
  using namespace duet::models;

  header("Table III — traditional models (fallback study)");
  TextTable t({"model", "Framework-GPU", "TVM-CPU", "TVM-GPU", "DUET",
               "fallback", "DUET vs TVM-GPU"});
  for (int depth : {18, 34, 50, 101}) {
    ResNetConfig c;
    c.depth = depth;
    run_model("ResNet-" + std::to_string(depth), build_resnet(c), t);
  }
  run_model("VGG-16", build_vgg16(), t);
  run_model("SqueezeNet", build_squeezenet(), t);
  std::printf("%s", t.render().c_str());
  std::printf(
      "paper reference: DUET equals the best baseline (TVM-GPU) on ResNet — "
      "sequential models trigger the single-device fallback\n");
  return 0;
}
