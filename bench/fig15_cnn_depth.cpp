// Reproduces Fig. 15: Wide-and-Deep latency while varying the ResNet
// encoder depth (18/34/50/101).
//
// Paper reference: TVM-CPU degrades sharply with depth (CNN dominates CPU
// execution); DUET stays almost flat while the CNN remains hidden behind the
// CPU-side RNN, then grows once the GPU-side CNN becomes the critical path.

#include "bench_util.hpp"
#include "models/model_zoo.hpp"

int main() {
  using namespace duet;
  using namespace duet::bench;
  std::vector<std::pair<std::string, Graph>> variants;
  for (int depth : {18, 34, 50, 101}) {
    models::WideDeepConfig c;
    c.cnn_depth = depth;
    variants.emplace_back("ResNet-" + std::to_string(depth),
                          models::build_wide_deep(c));
  }
  run_variation_sweep(
      "Fig.15 — Wide-and-Deep, varying CNN encoder depth", variants,
      "TVM-CPU grows sharply with depth; DUET flat while RNN-on-CPU hides the "
      "CNN, then tracks the GPU CNN cost");
  return 0;
}
