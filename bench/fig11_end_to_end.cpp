// Reproduces Fig. 11: end-to-end latency of Framework (PyTorch/TensorFlow),
// TVM-CPU, TVM-GPU, and DUET on Wide-and-Deep, Siamese, and MT-DNN.
//
// Paper reference: DUET achieves 1.5-2.3x over TVM-GPU, 1.3-15.9x over
// TVM-CPU, 2.1-8.4x over framework-GPU, and 2.3-18.8x over framework-CPU.

#include "bench_util.hpp"
#include "models/model_zoo.hpp"

namespace {

constexpr int kRuns = 2000;

void run_model(const std::string& name, duet::Graph model) {
  using namespace duet;
  using namespace duet::bench;

  DuetEngine engine(std::move(model));
  DevicePair& devices = engine.devices();
  Baseline fw_cpu(engine.model(), BaselineKind::kFrameworkCpu, devices);
  Baseline fw_gpu(engine.model(), BaselineKind::kFrameworkGpu, devices);
  Baseline tvm_cpu(engine.model(), BaselineKind::kTvmCpu, devices);
  Baseline tvm_gpu(engine.model(), BaselineKind::kTvmGpu, devices);

  const double d = engine_latency(engine, kRuns).mean;
  const double fc = baseline_latency(fw_cpu, kRuns).mean;
  const double fg = baseline_latency(fw_gpu, kRuns).mean;
  const double tc = baseline_latency(tvm_cpu, kRuns).mean;
  const double tg = baseline_latency(tvm_gpu, kRuns).mean;

  header("Fig.11 — " + name + " (batch 1, mean of " + std::to_string(kRuns) +
         " runs)");
  TextTable t({"engine", "latency", "DUET speedup"});
  t.add_row({"Framework-CPU", ms(fc), speedup(fc, d)});
  t.add_row({"Framework-GPU", ms(fg), speedup(fg, d)});
  t.add_row({"TVM-CPU", ms(tc), speedup(tc, d)});
  t.add_row({"TVM-GPU", ms(tg), speedup(tg, d)});
  t.add_row({"DUET", ms(d), "1.00x"});
  std::printf("%s", t.render().c_str());
  std::printf("fallback: %s | placement: %s\n",
              engine.report().fell_back ? "yes" : "no",
              engine.report().schedule.placement.to_string().c_str());
}

}  // namespace

int main() {
  using namespace duet::models;
  run_model("Wide-and-Deep", build_wide_deep());
  run_model("Siamese", build_siamese());
  run_model("MT-DNN", build_mtdnn());
  std::printf(
      "\npaper reference bands: vs TVM-GPU 1.5-2.3x | vs TVM-CPU 1.3-15.9x | "
      "vs framework-GPU 2.1-8.4x | vs framework-CPU 2.3-18.8x\n");
  return 0;
}
