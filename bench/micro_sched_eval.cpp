// Micro-benchmark of the scheduler-evaluation fast path and the content-
// addressed caches. Two measurements, emitted as BENCH_4.json:
//
//  1. evals/sec of LatencyEvaluator::evaluate (heap-based ready queues +
//     placement memo) vs evaluate_reference (the original per-step O(n^2)
//     scan) on a ~32-subgraph fan-out partition, replaying an identical
//     correction-sweep placement stream — the access pattern greedy-
//     correction and annealing actually generate, revisits included.
//  2. Cold vs warm wall time of profiling the whole model zoo through the
//     ProfileCache, plus the warm hit rate.
//
// Runs argument-free; prints the table and writes BENCH_4.json to the
// current directory (CI uploads it as an artifact).

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "compiler/compile_cache.hpp"
#include "graph/builder.hpp"
#include "models/model_zoo.hpp"
#include "partition/partitioner.hpp"
#include "profile/profile_cache.hpp"
#include "profile/profiler.hpp"
#include "sched/latency_model.hpp"

namespace {

using namespace duet;

// 31 parallel dense branches + a concat head: phased partitioning turns each
// branch into its own subgraph, landing the partition at 32 subgraphs — a
// size where the reference's per-step all-n scan visibly hurts.
Graph fanout_model(int branches) {
  GraphBuilder b("fanout", 5);
  const NodeId x = b.input(Shape{1, 256}, "x");
  std::vector<NodeId> heads;
  heads.reserve(static_cast<size_t>(branches));
  for (int i = 0; i < branches; ++i) {
    heads.push_back(
        b.dense(x, 96, "relu", "branch" + std::to_string(i) + ".fc"));
  }
  const NodeId join = b.concat(heads, 1);
  return b.finish({b.dense(join, 16, "", "head")});
}

// The placement stream of a correction search: sweep over all subgraphs,
// evaluate every single-flip neighbor of the current base, accept improving
// flips. Once the search converges, consecutive sweeps re-evaluate the same
// neighbors — the revisits the memo exists for. Decisions are driven by the
// reference evaluator so the stream is identical for both measurements.
std::vector<Placement> correction_stream(const LatencyEvaluator& eval,
                                         size_t n, int sweeps) {
  std::vector<Placement> stream;
  stream.reserve(static_cast<size_t>(sweeps) * n);
  Placement base(n, DeviceKind::kCpu);
  double best = eval.evaluate_reference(base);
  for (int s = 0; s < sweeps; ++s) {
    for (size_t i = 0; i < n; ++i) {
      Placement trial = base;
      const DeviceKind flipped = trial.of(static_cast<int>(i)) == DeviceKind::kCpu
                                     ? DeviceKind::kGpu
                                     : DeviceKind::kCpu;
      trial.set(static_cast<int>(i), flipped);
      stream.push_back(trial);
      const double t = eval.evaluate_reference(trial);
      if (t < best) {
        best = t;
        base = trial;
      }
    }
  }
  return stream;
}

struct EvalResult {
  double evals_per_sec = 0.0;
  double checksum = 0.0;
};

template <typename Fn>
EvalResult time_stream(const std::vector<Placement>& stream, int reps, Fn fn) {
  EvalResult r;
  WallTimer timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (const Placement& p : stream) r.checksum += fn(p);
  }
  const double elapsed = timer.elapsed();
  r.evals_per_sec =
      static_cast<double>(stream.size()) * reps / (elapsed > 0 ? elapsed : 1e-9);
  return r;
}

}  // namespace

int main() {
  // --- part 1: evaluator fast path vs reference -----------------------------
  Graph model = fanout_model(31);
  DevicePair devices = make_default_device_pair(7);
  const Partition partition = partition_phased(model);
  const size_t n = partition.subgraphs.size();

  Profiler profiler(devices);
  ProfileOptions popts;
  popts.runs = 1;
  popts.with_noise = false;
  const std::vector<SubgraphProfile> profiles =
      profiler.profile_partition(partition, model, popts);
  LatencyEvaluator eval(partition, model, profiles, devices.link->params());

  const int kSweeps = 40;
  const int kReps = 50;
  const std::vector<Placement> stream = correction_stream(eval, n, kSweeps);

  const EvalResult ref = time_stream(
      stream, kReps, [&](const Placement& p) { return eval.evaluate_reference(p); });
  const int64_t memo_base = eval.memo_hits();
  const int64_t evals_base = eval.evaluations();
  const EvalResult fast = time_stream(
      stream, kReps, [&](const Placement& p) { return eval.evaluate(p); });
  const double memo_hit_rate =
      static_cast<double>(eval.memo_hits() - memo_base) /
      static_cast<double>(eval.evaluations() - evals_base);
  const double speedup = fast.evals_per_sec / ref.evals_per_sec;

  bench::header("scheduler evaluation fast path");
  std::printf("partition: %zu subgraphs | stream: %zu placements x %d reps\n", n,
              stream.size(), kReps);
  std::printf("reference (O(n^2) scan)   %12.0f evals/sec\n", ref.evals_per_sec);
  std::printf("fast (heaps + memo)       %12.0f evals/sec  (%.1fx, memo hit rate %.1f%%)\n",
              fast.evals_per_sec, speedup, 100.0 * memo_hit_rate);
  if (ref.checksum != fast.checksum) {
    std::printf("ERROR: checksum mismatch (%.17g vs %.17g)\n", ref.checksum,
                fast.checksum);
    return 1;
  }

  // --- part 2: cold vs warm zoo profiling through the caches ----------------
  bench::header("profile cache cold vs warm (model zoo)");
  std::vector<Graph> graphs;
  std::vector<Partition> partitions;
  for (const std::string& name : models::zoo_model_names()) {
    graphs.push_back(models::build_by_name(name));
    partitions.push_back(partition_phased(graphs.back()));
  }
  ProfileOptions zoo_opts;
  zoo_opts.runs = 50;

  ProfileCache::instance().clear();
  ProfileCache::instance().reset_stats();
  CompileCache::instance().clear();
  const auto profile_zoo = [&]() {
    WallTimer timer;
    for (size_t i = 0; i < graphs.size(); ++i) {
      profiler.profile_partition(partitions[i], graphs[i], zoo_opts);
    }
    return timer.elapsed();
  };
  const double cold_wall_s = profile_zoo();
  const ProfileCache::Stats cold = ProfileCache::instance().stats();
  const double warm_wall_s = profile_zoo();
  const ProfileCache::Stats warm = ProfileCache::instance().stats();
  const uint64_t warm_hits = warm.hits - cold.hits;
  const uint64_t warm_misses = warm.misses - cold.misses;
  const double warm_hit_rate =
      warm_hits + warm_misses > 0
          ? static_cast<double>(warm_hits) /
                static_cast<double>(warm_hits + warm_misses)
          : 0.0;
  std::printf("cold (empty caches)       %8.3f s   (%llu profile misses)\n",
              cold_wall_s, static_cast<unsigned long long>(cold.misses));
  std::printf("warm (in-memory caches)   %8.3f s   (%.2fx, hit rate %.1f%%)\n",
              warm_wall_s, cold_wall_s / warm_wall_s, 100.0 * warm_hit_rate);

  // --- BENCH_4.json ---------------------------------------------------------
  std::FILE* out = std::fopen("BENCH_4.json", "w");
  if (out == nullptr) {
    std::printf("ERROR: cannot write BENCH_4.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\"subgraphs\":%zu,\"stream_placements\":%zu,\"reps\":%d,"
               "\"evals_per_sec_ref\":%.1f,\"evals_per_sec_fast\":%.1f,"
               "\"speedup\":%.3f,\"memo_hit_rate\":%.4f,"
               "\"cache\":{\"cold_wall_s\":%.4f,\"warm_wall_s\":%.4f,"
               "\"speedup\":%.3f,\"hit_rate\":%.4f}}\n",
               n, stream.size(), kReps, ref.evals_per_sec, fast.evals_per_sec,
               speedup, memo_hit_rate, cold_wall_s, warm_wall_s,
               cold_wall_s / warm_wall_s, warm_hit_rate);
  std::fclose(out);
  std::printf("\nwrote BENCH_4.json\n");

  // Acceptance: >= 5x evals/sec on the ~32-subgraph partition.
  if (speedup < 5.0) {
    std::printf("ERROR: fast-path speedup %.2fx below the 5x bar\n", speedup);
    return 1;
  }
  return 0;
}
