// Reproduces Table II: per-subgraph computation cost on CPU and GPU (from
// the compiler-aware profiler) and the final placement decision, for the
// three heterogeneous models.
//
// Paper reference (Wide-and-Deep): RNN subgraph 2.4 ms CPU / 6.4 ms GPU;
// CNN subgraph 14.9 ms CPU / 0.9 ms GPU — so DUET maps RNN->CPU, CNN->GPU.

#include "bench_util.hpp"
#include "models/model_zoo.hpp"

namespace {

void run_model(const std::string& name, duet::Graph model) {
  using namespace duet;
  using namespace duet::bench;
  DuetEngine engine(std::move(model));
  header("Table II — " + name);
  std::printf("%s", render_subgraph_breakdown(engine).c_str());
  std::printf("est DUET %s | est TVM-CPU %s | est TVM-GPU %s\n",
              ms(engine.report().est_hetero_s).c_str(),
              ms(engine.report().est_single_cpu_s).c_str(),
              ms(engine.report().est_single_gpu_s).c_str());
}

}  // namespace

int main() {
  using namespace duet::models;
  run_model("Wide-and-Deep", build_wide_deep());
  run_model("Siamese", build_siamese());
  run_model("MT-DNN", build_mtdnn());
  std::printf(
      "\npaper reference (W&D): RNN 2.4ms CPU / 6.4ms GPU -> CPU; "
      "CNN 14.9ms CPU / 0.9ms GPU -> GPU\n");
  return 0;
}
