// Ablations of DUET's design choices (DESIGN.md §5), on Wide-and-Deep:
//
//   A. Correction step on/off — quantifies Algorithm 1 Step 3.
//   B. Profiling runs 5 -> 500 — the paper claims a few hundred runs give
//      statistically stable means; we report the schedule quality obtained
//      from increasingly short profiling.
//   C. Partition granularity — coarse phased subgraphs (DUET) vs one
//      subgraph per operator: fine granularity loses fusion inside subgraphs
//      and pays per-subgraph dispatch + transfer overhead.

#include "bench_util.hpp"
#include "device/calibration.hpp"
#include "device/interconnect.hpp"
#include "models/model_zoo.hpp"
#include "sched/scheduler.hpp"

int main() {
  using namespace duet;
  using namespace duet::bench;

  Graph model = models::build_wide_deep();

  // --- A: correction on/off ---------------------------------------------------
  {
    DevicePair devices = make_default_device_pair(21);
    Partition partition = partition_phased(model);
    Profiler profiler(devices);
    const auto profiles = profiler.profile_partition(partition, model);
    LatencyEvaluator evaluator(partition, model, profiles, devices.link->params());
    Rng rng(5);
    SchedulingContext ctx{&partition, &profiles, &evaluator, &rng};

    header("Ablation A — correction step (Wide-and-Deep)");
    TextTable t({"variant", "est latency", "evaluations"});
    for (const char* name : {"greedy-only", "greedy-correction"}) {
      ScheduleResult r = make_scheduler(name)->schedule(ctx);
      t.add_row({name, ms(r.est_latency_s), std::to_string(r.evaluations)});
    }
    std::printf("%s", t.render().c_str());
  }

  // --- B: profiling runs -------------------------------------------------------
  {
    header("Ablation B — number of profiling runs");
    TextTable t({"profile runs", "schedule est latency", "RNN CPU mean",
                 "RNN CPU stddev"});
    for (int runs : {5, 20, 100, 500}) {
      DevicePair devices = make_default_device_pair(22);
      Partition partition = partition_phased(model);
      Profiler profiler(devices);
      ProfileOptions po;
      po.runs = runs;
      const auto profiles = profiler.profile_partition(partition, model, po);
      LatencyEvaluator evaluator(partition, model, profiles,
                                 devices.link->params());
      Rng rng(6);
      SchedulingContext ctx{&partition, &profiles, &evaluator, &rng};
      ScheduleResult r = make_scheduler("greedy-correction")->schedule(ctx);
      // Find the RNN-dominated subgraph for the stability columns.
      const SubgraphProfile* rnn = &profiles[0];
      for (const auto& p : profiles) {
        if (p.time_on(DeviceKind::kCpu) > rnn->time_on(DeviceKind::kCpu) &&
            p.time_on(DeviceKind::kGpu) > p.time_on(DeviceKind::kCpu)) {
          rnn = &p;
        }
      }
      t.add_row({std::to_string(runs), ms(r.est_latency_s),
                 ms(rnn->on(DeviceKind::kCpu).stats.mean),
                 ms(rnn->on(DeviceKind::kCpu).stats.stddev)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("paper claim: ~500 runs suffice for stable measurement\n");
  }

  // --- C: partition granularity -------------------------------------------------
  {
    header("Ablation C — coarse vs fine partition granularity");
    TextTable t({"granularity", "subgraphs", "est latency"});
    for (const auto gran : {PartitionOptions::Granularity::kCoarse,
                            PartitionOptions::Granularity::kFine}) {
      DevicePair devices = make_default_device_pair(23);
      PartitionOptions po;
      po.granularity = gran;
      Partition partition = partition_phased(model, po);
      Profiler profiler(devices);
      const auto profiles = profiler.profile_partition(partition, model);
      LatencyEvaluator evaluator(partition, model, profiles,
                                 devices.link->params());
      Rng rng(7);
      SchedulingContext ctx{&partition, &profiles, &evaluator, &rng};
      ScheduleResult r = make_scheduler("greedy-correction")->schedule(ctx);
      t.add_row({gran == PartitionOptions::Granularity::kCoarse ? "coarse (DUET)"
                                                                : "fine (per-op)",
                 std::to_string(partition.subgraphs.size()),
                 ms(r.est_latency_s)});
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "expected: fine granularity loses intra-subgraph fusion and pays "
        "dispatch per operator -> clearly slower\n");
  }

  // --- D: nested partitioning (paper footnote 1) -------------------------------
  {
    header("Ablation D — nested (multi-level) partitioning on MT-DNN");
    TextTable t({"partition", "subgraphs", "est latency"});
    Graph mtdnn = models::build_mtdnn();
    for (int chunk : {0, 16, 8}) {
      DevicePair devices = make_default_device_pair(24);
      PartitionOptions po;
      if (chunk > 0) {
        po.granularity = PartitionOptions::Granularity::kNested;
        po.nested_max_nodes = static_cast<size_t>(chunk);
      }
      Partition partition = partition_phased(mtdnn, po);
      Profiler profiler(devices);
      const auto profiles = profiler.profile_partition(partition, mtdnn);
      LatencyEvaluator evaluator(partition, mtdnn, profiles,
                                 devices.link->params());
      Rng rng(8);
      SchedulingContext ctx{&partition, &profiles, &evaluator, &rng};
      ScheduleResult r = make_scheduler("greedy-correction")->schedule(ctx);
      t.add_row({chunk == 0 ? "coarse (paper)"
                            : ("nested <=" + std::to_string(chunk)).c_str(),
                 std::to_string(partition.subgraphs.size()),
                 ms(r.est_latency_s)});
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "nested chunks add device-switch points inside the encoder at the "
        "cost of extra boundaries; gains appear only when a chain has "
        "device-heterogeneous segments\n");
  }

  // --- E: intra-device concurrency (paper footnote 2) ----------------------------
  {
    header("Ablation E — GPU streams for MT-DNN task heads (gpu-only placement)");
    TextTable t({"gpu lanes", "gpu-only est latency"});
    Graph mtdnn = models::build_mtdnn();
    for (int lanes : {1, 2, 4}) {
      DevicePair devices = make_default_device_pair(25);
      Partition partition = partition_phased(mtdnn);
      Profiler profiler(devices);
      const auto profiles = profiler.profile_partition(partition, mtdnn);
      LatencyEvaluator evaluator(partition, mtdnn, profiles,
                                 devices.link->params(),
                                 LaneConfig::gpu_streams(lanes));
      const double latency =
          evaluator.evaluate(Placement(partition.subgraphs.size(),
                                       DeviceKind::kGpu));
      t.add_row({std::to_string(lanes), ms(latency)});
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "streams recover intra-phase parallelism on a single device (the "
        "paper's footnote-2 extension); DUET's CPU+GPU split composes with "
        "it\n");
  }
  return 0;
}
