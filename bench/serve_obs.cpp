// Observability overhead: cost of the always-on flight recorder on the
// serving runtime, emitted as BENCH_8.json.
//
// The flight recorder's contract (src/telemetry/flight_recorder.hpp) is
// that it stays ON in production, so its cost must be provably negligible.
// Three legs establish that:
//
//  1. record() microbench — wall-clock ns per event with recording enabled
//     vs disabled (the disabled path is the early-out branch, i.e. the
//     floor a skeptic would compare against).
//  2. real serving leg — a live DuetServer run twice, recorder on vs off,
//     reporting windowed wall p99 from the SLO monitor. Informational:
//     wall numbers depend on the build machine and scheduler noise, so
//     they are published but not gated. This leg also measures the actual
//     flight events emitted per completed request.
//  3. virtual-time gate — the measured per-event cost times the measured
//     events-per-request is folded into the modeled service times of the
//     serving simulator, and the same Poisson trace is replayed with and
//     without that inflation. Virtual time makes the baseline p99 exactly
//     reproducible on any machine; the only machine-dependent input is the
//     (tens of nanoseconds) measured record cost, so the p99 ratio gate is
//     stable in CI.
//
// Runs argument-free; prints the table and writes BENCH_8.json to the
// current directory (CI uploads it as an artifact and gates on it).
//
// Acceptance: virtual-time p99 ratio (recorder on / off) <= 1.05 on every
// model, and the serving leg must show the recorder actually recording
// (>= 4 events per completed request — enqueue, pickup, launch, complete).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "serve/server.hpp"
#include "serve/simulator.hpp"
#include "serve/workload.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace duet;

constexpr size_t kMicroEvents = 4'000'000;
constexpr int kServeRequests = 64;
constexpr int kServeWave = 16;  // closed-loop wave size (queue stays shallow)
constexpr int kSimRequests = 2000;
constexpr double kMaxP99Ratio = 1.05;
constexpr double kMinEventsPerRequest = 4.0;

// Wall-clock nanoseconds per FlightRecorder::record() call in the current
// recording state. The loop varies trace id and args so the store pattern
// matches serving traffic rather than hammering one cache line value.
double record_ns_per_event(size_t n) {
  auto& recorder = telemetry::FlightRecorder::instance();
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    recorder.record(telemetry::FlightKind::kLaunch, /*trace_id=*/i,
                    /*arg0=*/i & 7, /*arg1=*/1234, /*device=*/0);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(n);
}

struct ServeLeg {
  uint64_t completed = 0;
  uint64_t events = 0;  // flight events recorded during the leg
  double p99_us = 0.0;  // windowed wall latency from the SLO monitor
};

ServeLeg run_serving(const std::string& name, bool recorder_on) {
  auto& recorder = telemetry::FlightRecorder::instance();
  recorder.clear();
  recorder.set_recording_enabled(recorder_on);
  const uint64_t recorded_before = recorder.recorded();

  serve::ServeOptions sopts;
  sopts.workers = 2;
  sopts.queue_capacity = 64;
  serve::DuetServer server(models::build_by_name(name), sopts);

  Rng rng(7);
  const auto feeds = models::make_random_feeds(server.engine().model(), rng);
  // Closed-loop waves: the queue never outgrows one wave, so the measured
  // p99 reflects service latency rather than a deep-queue drain, and no
  // request is rejected at admission.
  ServeLeg leg;
  for (int base = 0; base < kServeRequests; base += kServeWave) {
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(kServeWave);
    for (int i = 0; i < kServeWave; ++i) {
      futures.push_back(server.submit(feeds));
    }
    for (auto& f : futures) {
      leg.completed += f.get().status == serve::RequestStatus::kOk ? 1 : 0;
    }
  }
  leg.p99_us = server.slo_snapshot().latency_p99_us;
  server.drain();
  leg.events = recorder.recorded() - recorded_before;
  recorder.set_recording_enabled(true);
  return leg;
}

}  // namespace

int main() {
  const std::vector<std::string> kModels = {"wide-deep", "mtdnn"};

  bench::header("flight recorder record() microbench");
  const double ns_off = [] {
    telemetry::FlightRecorder::instance().set_recording_enabled(false);
    const double ns = record_ns_per_event(kMicroEvents);
    telemetry::FlightRecorder::instance().set_recording_enabled(true);
    return ns;
  }();
  telemetry::FlightRecorder::instance().clear();
  const double ns_on = record_ns_per_event(kMicroEvents);
  telemetry::FlightRecorder::instance().clear();
  std::printf("record(): %.1f ns/event on, %.1f ns/event off (%zu events)\n",
              ns_on, ns_off, kMicroEvents);

  std::string models_json;
  double worst_ratio = 0.0;
  double worst_events_per_request = 1e300;

  for (const std::string& name : kModels) {
    bench::header("serving overhead: " + name);

    // Real serving, recorder on vs off. Wall numbers are informational;
    // the on-leg's event count feeds the virtual-time gate below.
    const ServeLeg on = run_serving(name, /*recorder_on=*/true);
    const ServeLeg off = run_serving(name, /*recorder_on=*/false);
    const double events_per_request =
        on.completed > 0
            ? static_cast<double>(on.events) / static_cast<double>(on.completed)
            : 0.0;
    std::printf(
        "real: %llu/%d ok, wall p99 %.3f ms on / %.3f ms off, "
        "%.1f flight events per request\n",
        static_cast<unsigned long long>(on.completed), kServeRequests,
        on.p99_us * 1e-3, off.p99_us * 1e-3, events_per_request);
    worst_events_per_request =
        std::min(worst_events_per_request, events_per_request);

    // Virtual-time gate: replay one Poisson trace against a 4-worker pool
    // at 0.8x saturation, with per-request service inflated by the
    // measured recorder cost. Identical arrivals and draws on both legs,
    // so the ratio isolates the recorder.
    DuetEngine engine{models::build_by_name(name)};
    std::vector<double> service(kSimRequests);
    double total_s = 0.0;
    for (int i = 0; i < kSimRequests; ++i) {
      service[static_cast<size_t>(i)] = engine.latency(/*with_noise=*/true);
      total_s += service[static_cast<size_t>(i)];
    }
    const double mean_service_s = total_s / kSimRequests;
    const double overhead_s = events_per_request * ns_on * 1e-9;

    serve::ServeSimConfig cfg;
    cfg.workers = 4;
    cfg.queue_capacity = 128;
    cfg.deadline_s = 10.0 * mean_service_s;
    const double offered_qps = 0.8 * cfg.workers / mean_service_s;
    Rng rng(1234);
    const std::vector<double> arrivals =
        serve::poisson_trace(offered_qps, kSimRequests, rng);
    const serve::ServeStats base = serve::simulate_serving(
        arrivals, [&service](size_t i) { return service[i]; }, cfg);
    const serve::ServeStats inflated = serve::simulate_serving(
        arrivals, [&](size_t i) { return service[i] + overhead_s; }, cfg);
    const double ratio =
        base.sojourn.p99 > 0.0 ? inflated.sojourn.p99 / base.sojourn.p99 : 1.0;
    std::printf(
        "virtual: p99 %.3f ms baseline, %.3f ms with recorder "
        "(+%.3f us/request) -> ratio %.4f\n",
        base.sojourn.p99 * 1e3, inflated.sojourn.p99 * 1e3, overhead_s * 1e6,
        ratio);
    worst_ratio = std::max(worst_ratio, ratio);

    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "{\"model\":\"%s\",\"real\":{\"completed_on\":%llu,"
        "\"completed_off\":%llu,\"wall_p99_on_us\":%.1f,"
        "\"wall_p99_off_us\":%.1f},\"events_per_request\":%.2f,"
        "\"virtual\":{\"offered_qps\":%.2f,\"p99_base_s\":%.6f,"
        "\"p99_recorder_s\":%.6f,\"overhead_per_request_s\":%.9f,"
        "\"p99_ratio\":%.4f}}",
        name.c_str(), static_cast<unsigned long long>(on.completed),
        static_cast<unsigned long long>(off.completed), on.p99_us, off.p99_us,
        events_per_request, offered_qps, base.sojourn.p99,
        inflated.sojourn.p99, overhead_s, ratio);
    if (!models_json.empty()) models_json += ",";
    models_json += buf;
  }

  std::FILE* out = std::fopen("BENCH_8.json", "w");
  if (out == nullptr) {
    std::printf("ERROR: cannot write BENCH_8.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\"record_ns_on\":%.2f,\"record_ns_off\":%.2f,"
               "\"models\":[%s],"
               "\"gate\":{\"max_p99_ratio\":%.2f,\"worst_p99_ratio\":%.4f,"
               "\"min_events_per_request\":%.1f,"
               "\"worst_events_per_request\":%.2f}}\n",
               ns_on, ns_off, models_json.c_str(), kMaxP99Ratio, worst_ratio,
               kMinEventsPerRequest, worst_events_per_request);
  std::fclose(out);
  std::printf("\nwrote BENCH_8.json\n");

  bool ok = true;
  if (worst_ratio > kMaxP99Ratio) {
    std::printf("ERROR: recorder p99 ratio %.4f above the %.2f bar\n",
                worst_ratio, kMaxP99Ratio);
    ok = false;
  }
  if (worst_events_per_request < kMinEventsPerRequest) {
    std::printf(
        "ERROR: %.2f flight events per request — the always-on recorder "
        "should emit at least %.0f (enqueue/pickup/launch/complete)\n",
        worst_events_per_request, kMinEventsPerRequest);
    ok = false;
  }
  return ok ? 0 : 1;
}
