// Extension benchmark (beyond the paper, which is latency-only): pipelined
// throughput. Streams windows of queries through the DUET placement and the
// gpu-only placement; sustained throughput is bounded by the busiest
// device, so DUET's CPU/GPU split raises throughput as well as cutting
// latency.

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "runtime/pipeline.hpp"

int main() {
  using namespace duet;
  using namespace duet::bench;

  Graph model = models::build_wide_deep();
  DuetOptions opts;  // defaults: greedy-correction placement
  DuetEngine engine(models::build_wide_deep(), opts);
  DevicePair& devices = engine.devices();

  Partition partition = partition_phased(model);
  ExecutionPlan duet_plan =
      ExecutionPlan::build(model, partition, engine.report().schedule.placement,
                           devices, CompileOptions::compiler_defaults());
  ExecutionPlan gpu_plan = ExecutionPlan::build(
      model, partition, Placement(partition.subgraphs.size(), DeviceKind::kGpu),
      devices, CompileOptions::compiler_defaults());

  PipelinedRunner runner(devices);

  header("Throughput — pipelined query windows on Wide-and-Deep");
  TextTable t({"window", "DUET qps", "DUET mean lat", "GPU-only qps",
               "GPU-only mean lat"});
  for (int window : {1, 4, 16, 64}) {
    const auto d = runner.run(duet_plan, window);
    const auto g = runner.run(gpu_plan, window);
    char c1[32], c2[32], c3[32], c4[32];
    std::snprintf(c1, sizeof(c1), "%.0f", d.throughput_qps);
    std::snprintf(c2, sizeof(c2), "%.2f ms", d.mean_latency_s * 1e3);
    std::snprintf(c3, sizeof(c3), "%.0f", g.throughput_qps);
    std::snprintf(c4, sizeof(c4), "%.2f ms", g.mean_latency_s * 1e3);
    t.add_row({std::to_string(window), c1, c2, c3, c4});
  }
  std::printf("%s", t.render().c_str());

  const auto d64 = runner.run(duet_plan, 64);
  const auto g64 = runner.run(gpu_plan, 64);
  std::printf(
      "steady state: DUET bottleneck device busy %.2f ms/query -> %.0f qps "
      "ceiling; gpu-only %.2f ms/query -> %.0f qps ceiling (%.2fx)\n",
      d64.bottleneck_busy_s * 1e3, 1.0 / d64.bottleneck_busy_s,
      g64.bottleneck_busy_s * 1e3, 1.0 / g64.bottleneck_busy_s,
      g64.bottleneck_busy_s / d64.bottleneck_busy_s);
  return 0;
}
