#pragma once

// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures. Every harness prints (a) the measured rows and (b) the
// paper's reference numbers or bands, so EXPERIMENTS.md can be cross-checked
// by running the binaries.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "common/stats.hpp"
#include "duet/baseline.hpp"
#include "duet/engine.hpp"
#include "duet/report.hpp"

namespace duet::bench {

// Benchmarks measure steady-state performance of pipelines the tests and
// `duet_cli verify` already check, so the per-pass verifier and plan
// validation (checked mode, on by default) are switched off here.
inline const bool kCheckedModeDisabled = [] {
  set_verification_enabled(false);
  return true;
}();

// Mean latency of `runs` noisy modeled executions of the engine's plan.
inline SummaryStats engine_latency(DuetEngine& engine, int runs) {
  LatencyRecorder rec;
  for (int i = 0; i < runs; ++i) rec.add(engine.latency(/*with_noise=*/true));
  return rec.summarize();
}

// Mean latency of `runs` noisy baseline executions.
inline SummaryStats baseline_latency(Baseline& baseline, int runs) {
  LatencyRecorder rec;
  for (int i = 0; i < runs; ++i) rec.add(baseline.latency(/*with_noise=*/true));
  return rec.summarize();
}

inline std::string ms(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

inline std::string speedup(double base, double mine) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", base / mine);
  return buf;
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Shared driver for the Fig. 14-17 model-variation sweeps: for each labeled
// model variant, prints TVM-CPU / TVM-GPU / DUET latency and DUET's speedups.
inline void run_variation_sweep(
    const std::string& title,
    const std::vector<std::pair<std::string, Graph>>& variants,
    const std::string& paper_reference, int runs = 1000) {
  header(title);
  TextTable t({"variant", "TVM-CPU", "TVM-GPU", "DUET", "vs CPU", "vs GPU",
               "fallback"});
  for (const auto& [label, graph] : variants) {
    DuetEngine engine{Graph(graph)};
    Baseline tvm_cpu(engine.model(), BaselineKind::kTvmCpu, engine.devices());
    Baseline tvm_gpu(engine.model(), BaselineKind::kTvmGpu, engine.devices());
    const double d = engine_latency(engine, runs).mean;
    const double tc = baseline_latency(tvm_cpu, runs).mean;
    const double tg = baseline_latency(tvm_gpu, runs).mean;
    t.add_row({label, ms(tc), ms(tg), ms(d), speedup(tc, d), speedup(tg, d),
               engine.report().fell_back ? "yes" : "no"});
  }
  std::printf("%s", t.render().c_str());
  std::printf("paper reference: %s\n", paper_reference.c_str());
}

}  // namespace duet::bench
