// Ablation: the auto-tuning simulation (src/tuning). Shows (a) the tuning
// convergence curve — end-to-end Wide-and-Deep latency vs trials per task —
// and (b) that DUET's scheduling decisions are robust to tuning quality:
// RNN->CPU / CNN->GPU placement emerges well before tuning converges,
// because the *relative* device asymmetry appears even with mediocre
// schedules.

#include "bench_util.hpp"
#include "device/calibration.hpp"
#include "models/model_zoo.hpp"
#include "tuning/tuner.hpp"

int main() {
  using namespace duet;
  using namespace duet::bench;
  using namespace duet::tuning;

  Graph model = models::build_wide_deep();
  Graph optimized =
      PassManager::standard(CompileOptions::compiler_defaults()).run(model);
  const DeviceCostParams cpu = xeon_gold_6152();
  const DeviceCostParams gpu = titan_v();

  header("Tuning convergence — Wide-and-Deep op-in-sequence latency");
  TextTable t({"trials/task", "CPU latency", "GPU latency", "tuned tasks"});

  const auto row = [&](const char* label, const TuningDatabase& db) {
    CompileOptions opts = CompileOptions::compiler_defaults();
    if (db.size() > 0 || std::string(label) != "converged (calibration)") {
      opts.schedule_quality = make_schedule_quality_hook(db, 0.45);
    }
    const double c =
        compile_for_device(model, DeviceKind::kCpu, opts, cpu).est_total_time_s();
    const double g =
        compile_for_device(model, DeviceKind::kGpu, opts, gpu).est_total_time_s();
    t.add_row({label, ms(c), ms(g), std::to_string(db.size())});
  };

  TuningDatabase empty;
  row("0 (default templates)", empty);
  for (int trials : {4, 16, 64, 256}) {
    TuningDatabase db;
    TuningOptions opts;
    opts.trials = trials;
    opts.seed = 9;
    AutoTuner(opts).tune_graph(optimized, DeviceKind::kCpu, db);
    AutoTuner(opts).tune_graph(optimized, DeviceKind::kGpu, db);
    char label[32];
    std::snprintf(label, sizeof(label), "%d", trials);
    row(label, db);
  }
  {
    CompileOptions opts = CompileOptions::compiler_defaults();  // no hook
    const double c =
        compile_for_device(model, DeviceKind::kCpu, opts, cpu).est_total_time_s();
    const double g =
        compile_for_device(model, DeviceKind::kGpu, opts, gpu).est_total_time_s();
    t.add_row({"converged (calibration)", ms(c), ms(g), "-"});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "expected: latency decreases monotonically with trials and approaches "
      "the converged calibration; the CPU/GPU asymmetry (RNN vs CNN) is "
      "visible at every tuning level\n");
  return 0;
}
