// Reproduces Fig. 17: Wide-and-Deep latency at batch sizes 2/4/8/16/32
// (the model is frozen per batch size, as TVM lacks dynamic batching).
//
// Paper reference: DUET's advantage is largest at small batch (~1.5x at
// batch 2 vs TVM-GPU) and diminishes as the batch grows, because GPU
// occupancy improves with batch and single-GPU execution catches up.

#include "bench_util.hpp"
#include "models/model_zoo.hpp"

int main() {
  using namespace duet;
  using namespace duet::bench;
  std::vector<std::pair<std::string, Graph>> variants;
  for (int batch : {2, 4, 8, 16, 32}) {
    models::WideDeepConfig c;
    c.batch = batch;
    variants.emplace_back("batch " + std::to_string(batch),
                          models::build_wide_deep(c));
  }
  run_variation_sweep(
      "Fig.17 — Wide-and-Deep, varying batch size", variants,
      "speedup vs TVM-GPU ~1.5x at batch 2, shrinking toward 1x (fallback) at "
      "batch 32");
  return 0;
}
