// Reproduces Fig. 4: the execution timeline of Wide-and-Deep under
// operators-in-sequence execution on GPU (upper) and CPU (lower) — the
// motivating observation that the RNN component dominates on GPU while the
// CNN component dominates on CPU — plus the DUET timeline showing the
// overlapped heterogeneous schedule.

#include <map>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"

namespace {

// Component = first dotted segment of the node name ("rnn.lstm0" -> "rnn").
std::string component_of(const std::string& name) {
  const size_t dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

void sequential_timeline(const duet::Graph& model, duet::DeviceKind kind,
                         duet::DevicePair& devices) {
  using namespace duet;
  using namespace duet::bench;
  const CompiledSubgraph compiled = compile_for_device(
      model, kind, CompileOptions::compiler_defaults(),
      devices.device(kind).params());

  std::map<std::string, double> per_component;
  std::vector<std::string> order;
  double total = 0.0;
  std::string current = "input";
  for (const CompiledKernel& k : compiled.kernels()) {
    const std::string& node_name = compiled.graph().node(k.node).name;
    // Auto-generated glue ops (residual adds, activations) have no dotted
    // component prefix; attribute them to the enclosing component.
    if (node_name.find('.') != std::string::npos) {
      current = component_of(node_name);
    }
    if (per_component.find(current) == per_component.end()) order.push_back(current);
    per_component[current] += k.est_time_s;
    total += k.est_time_s;
  }

  std::printf("%s (operators-in-sequence, total %s):\n",
              kind == DeviceKind::kGpu ? "GPU" : "CPU", ms(total).c_str());
  double t = 0.0;
  for (const std::string& comp : order) {
    const double dt = per_component[comp];
    const int width = std::max(1, static_cast<int>(dt / total * 60));
    std::printf("  %-12s %9s  |%s|\n", comp.c_str(), ms(dt).c_str(),
                std::string(static_cast<size_t>(width), '#').c_str());
    t += dt;
  }
}

}  // namespace

int main() {
  using namespace duet;
  using namespace duet::bench;

  Graph model = models::build_wide_deep();
  DuetEngine engine(models::build_wide_deep());

  header("Fig.4 — Wide-and-Deep execution timelines");
  sequential_timeline(model, DeviceKind::kGpu, engine.devices());
  std::printf("\n");
  sequential_timeline(model, DeviceKind::kCpu, engine.devices());

  std::printf("\nDUET heterogeneous schedule (simulated executor):\n");
  Rng rng(3);
  const auto feeds = models::make_random_feeds(engine.model(), rng);
  ExecutionResult result = engine.infer(feeds);
  std::printf("%s", result.timeline.render_ascii(72).c_str());
  std::printf("end-to-end: %s (GPU busy %s, CPU busy %s)\n",
              ms(result.latency_s).c_str(),
              ms(result.timeline.busy_time(DeviceKind::kGpu)).c_str(),
              ms(result.timeline.busy_time(DeviceKind::kCpu)).c_str());
  std::printf(
      "paper reference: on GPU the RNN span dominates; on CPU the CNN span "
      "dominates; DUET overlaps RNN-on-CPU with CNN-on-GPU\n");
  return 0;
}
