// Hardware sensitivity study (a new experiment this reproduction can offer
// beyond the paper): how DUET's advantage depends on the two hardware
// parameters its design exploits — PCIe bandwidth (cheap coarse-grained
// communication) and GPU kernel-launch overhead (the reason RNNs run better
// on the CPU). Each row rebuilds the device pair with one parameter changed
// and re-runs the whole pipeline (profile -> schedule -> fallback decision).

#include "bench_util.hpp"
#include "device/calibration.hpp"
#include "models/model_zoo.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace duet;
using namespace duet::bench;

struct Outcome {
  double duet_s = 0.0;
  double best_single_s = 0.0;
  bool heterogeneous = false;
  std::string placement;
};

Outcome run_pipeline(const Graph& model, DevicePair& devices) {
  Partition partition = partition_phased(model);
  Profiler profiler(devices);
  const auto profiles = profiler.profile_partition(partition, model);
  LatencyEvaluator evaluator(partition, model, profiles, devices.link->params());
  Rng rng(4);
  SchedulingContext ctx{&partition, &profiles, &evaluator, &rng};
  const ScheduleResult hetero = make_scheduler("greedy-correction")->schedule(ctx);

  Baseline cpu(model, BaselineKind::kTvmCpu, devices);
  Baseline gpu(model, BaselineKind::kTvmGpu, devices);
  Outcome o;
  o.best_single_s = std::min(cpu.latency(false), gpu.latency(false));
  o.heterogeneous = hetero.est_latency_s < o.best_single_s * 0.98;
  o.duet_s = o.heterogeneous ? hetero.est_latency_s : o.best_single_s;
  o.placement = hetero.placement.to_string();
  return o;
}

}  // namespace

int main() {
  Graph model = models::build_wide_deep();

  header("Sensitivity A — PCIe bandwidth (Wide-and-Deep)");
  {
    TextTable t({"link bandwidth", "DUET", "best single device", "co-executes"});
    for (double gbps : {0.5, 2.0, 6.0, 12.0, 32.0, 64.0}) {
      DevicePair devices;
      devices.cpu = std::make_unique<CpuDevice>(1);
      devices.gpu = std::make_unique<GpuDevice>(2);
      TransferParams link = pcie3_x16();
      link.bandwidth_gbps = gbps;
      devices.link = std::make_unique<Interconnect>(link, link_noise_sigma(), 3);
      const Outcome o = run_pipeline(model, devices);
      char bw[32];
      std::snprintf(bw, sizeof(bw), "%.1f GB/s", gbps);
      t.add_row({bw, ms(o.duet_s), ms(o.best_single_s),
                 o.heterogeneous ? "yes" : "no"});
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "W&D's boundary tensors are small (<= a few hundred KiB), so "
        "co-execution survives even slow links — the payoff of coarse "
        "granularity (paper §III-B)\n");
  }

  header("Sensitivity B — GPU kernel-launch overhead (Wide-and-Deep)");
  {
    TextTable t({"launch overhead", "DUET", "best single device", "co-executes",
                 "placement"});
    for (double us : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
      DevicePair devices;
      DeviceCostParams gpu = titan_v();
      gpu.launch_overhead_s = us * 1e-6;
      devices.cpu = std::make_unique<CpuDevice>(1);
      devices.gpu = std::make_unique<GpuDevice>(gpu, gpu_noise_sigma(), 2);
      devices.link = std::make_unique<Interconnect>(pcie3_x16(),
                                                    link_noise_sigma(), 3);
      const Outcome o = run_pipeline(model, devices);
      char oh[32];
      std::snprintf(oh, sizeof(oh), "%.1f us", us);
      t.add_row({oh, ms(o.duet_s), ms(o.best_single_s),
                 o.heterogeneous ? "yes" : "no", o.placement});
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "lower launch overhead makes the GPU competitive on the RNN, "
        "shrinking DUET's gain; higher overhead widens it — the asymmetry "
        "DUET's scheduler keys on\n");
  }
  return 0;
}
