// duet_cli — command-line front door to the engine.
//
//   duet_cli --model wide-deep                 # schedule + report
//   duet_cli --model mtdnn --scheduler random  # pick the scheduler
//   duet_cli --relay model.relay               # load a textual Relay module
//   duet_cli --model siamese --runs 2000       # latency distribution
//   duet_cli --model wide-deep --trace out.json --dot out.dot
//   duet_cli verify wide-deep                  # lint one model end to end
//   duet_cli verify --all                      # lint the whole model zoo
//   duet_cli analyze wide-deep                 # liveness + memory + race report
//   duet_cli analyze --all --json              # ... machine-readable, whole zoo
//   duet_cli lint wide-deep                    # unified static-analysis suite
//   duet_cli lint --all --sarif out.sarif      # whole zoo + serve protocol, SARIF
//   duet_cli trace wide-deep --out traces/     # telemetry trace + stats JSON
//   duet_cli trace --all --out traces/         # ... for the whole zoo
//   duet_cli stats mtdnn                       # drift tables + metric counters
//   duet_cli stats --all --json                # machine-readable, whole zoo
//   duet_cli schedule wide-deep                # disk-cached schedule
//   duet_cli schedule --all                    # whole zoo; prints cache hit rate
//   duet_cli cache stats                       # inspect the on-disk profile cache
//   duet_cli cache clear                       # drop it
//   duet_cli serve-bench wide-deep --workers 4 # serving throughput + tails
//   duet_cli serve-bench --all --json          # machine-readable, whole zoo
//
// `verify` runs the static verification layer (src/analysis) over the full
// pipeline — raw graph, every compiler pass, partition, placement, plan —
// and exits nonzero with pass/rule/node diagnostics on any violation.
//
// `analyze` runs the dataflow suite over the built plan: per-value liveness
// intervals, the packed arena layout versus the naive per-tensor footprint,
// and the happens-before race check. Single-model runs print the full
// interval and slot tables; exits nonzero when a device's arena exceeds its
// naive footprint or any race diagnostic fires.
//
// `lint` runs the unified static-analysis suite (ISSUE 6): every checker in
// src/analysis — graph verifier, partition/placement/plan validators,
// happens-before race checker, and the lint passes (boundary types, sync
// elision, redundant transfers, dead subgraphs, plan-swap arena audit with a
// recalibration-style flipped plan as the retired snapshot) — plus the
// small-scope serve-protocol model checker. Diagnostics are deterministic
// (sorted by severity/rule/artifact/subgraph/node); --json emits one
// validated document per artifact and --sarif writes one SARIF 2.1.0 log
// for CI annotation. Exits nonzero iff any error-severity finding fires.
//
// `trace` enables the telemetry layer, runs the full pipeline plus one
// numeric inference on each executor (SimExecutor and ThreadedExecutor), and
// writes <model>.trace.json (merged Chrome trace: wall-clock spans from
// compiler/profiler/scheduler/plan/executors next to the modeled virtual
// timeline) and <model>.stats.json (metrics registry + predicted-vs-observed
// drift for both executors). Both documents are JSON-validated before they
// are written. Fallback is disabled so the heterogeneous plan (and its
// transfers) is what gets traced.
//
// `stats` runs the same pipeline and prints the per-subgraph drift tables
// and headline counters to stdout (--json for one JSON document per model).
//
// `serve-bench` drives the concurrent serving runtime (src/serve): it runs
// real traffic through a DuetServer (N worker threads over the shared plan,
// bounded-queue admission, one online recalibration pass), then replays
// deterministic open-loop Poisson traces through the virtual-time queueing
// simulator at a nominal (50% utilization) and a peak (2x capacity) offered
// load. Reports per-leg throughput, p50/p95/p99 sojourn, shed and reject
// rates, and the placement-swap count; --json emits one document per model,
// --out writes a Chrome trace with one span per served request, and
// --metrics-out writes one Prometheus text exposition of the metrics
// registry after the run.
//
// `flight` exercises the always-on flight recorder end to end: it serves a
// healthy burst through a real DuetServer, then a seeded deadline-miss
// storm (requests whose deadlines are already expired at admission), which
// trips the recorder's burst trigger mid-run and writes the post-mortem
// dump — <dir>/<model>/flight_trace.json (Chrome trace with per-request
// flow arcs) and flight_summary.json — exactly as a production incident
// would. Exits nonzero when no dump landed.
//
// `schedule` runs the pipeline with the persistent profile cache enabled
// (default directory: $DUET_CACHE_DIR or .duet-cache) and reports the cache
// traffic: the first run profiles each structural equivalence class once and
// writes the cache; a second run over the same calibration hits 100% and
// skips profiling entirely. `cache stats` / `cache clear` inspect and delete
// that on-disk file; `--no-cache` disables both the compile and profile
// caches for the run (A/B baseline).
//
// Options:
//   --model <name>       zoo model (wide-deep|siamese|mtdnn|resnet18|...)
//   --relay <file>       parse a Relay-like text file instead (constants
//                        materialize as zeros)
//   --scheduler <name>   greedy-correction (default) | random | round-robin |
//                        random+correction | greedy-only | exhaustive |
//                        analytic-dp | annealing | cpu-only | gpu-only
//   --no-fallback        keep the heterogeneous plan even if a single device
//                        would win
//   --nested <N>         nested partitioning with chunk bound N
//   --runs <N>           sample N noisy latencies and print the distribution
//   --trace <file>       write a Chrome trace of one inference
//   --dot <file>         write the partitioned graph in Graphviz DOT
//   --dump <file>        save the model as Relay text + .weights sidecar
//   --breakdown          print the Table II-style subgraph table
//   --json               emit the schedule report as JSON (default command)
//   --out <dir>          output directory for `trace` / `serve-bench`
//   --cache-dir <dir>    profile-cache directory for `schedule` / `cache`
//                        (default: $DUET_CACHE_DIR, else .duet-cache)
//   --no-cache           disable the compile and profile caches
//   --qps <Q>            serve-bench: nominal offered load (default: half of
//                        the worker pool's saturation rate)
//   --workers <N>        serve-bench: worker replicas (default 4)
//   --deadline-ms <D>    serve-bench: per-request deadline (default: 10x the
//                        modeled service time)
//   --requests <N>       serve-bench: trace length per simulated leg
//                        flight: healthy-phase request count (default 24)
//   --metrics-out <path> serve-bench: write a Prometheus text exposition
//   --models <a,b,..>    serve-bench: comma-separated resident models; engages
//                        the multi-tenant fleet mode (one ModelRegistry, a
//                        FleetServer leg, bucketed-vs-baseline virtual legs)
//   --tenants <N>        serve-bench fleet: tenant classes (default 3:
//                        gold/silver/bronze, WFQ weights 4/2/1)
//   --max-batch <B>      serve-bench fleet: coalescing cap (default 8)
//   --verify-batching    serve-bench: CI determinism gate — a coalesced
//                        batch must be bit-identical to the same requests
//                        run alone; exits non-zero on any divergence
//   --storm <N>          flight: storm-phase request count (default 8)
//   --dump <dir>         flight: dump root (default flight-dump; per-model
//                        subdirectories)

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <optional>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/graph_verifier.hpp"
#include "analysis/lint/lint.hpp"
#include "analysis/lint/rules.hpp"
#include "analysis/lint/sarif.hpp"
#include "analysis/liveness.hpp"
#include "analysis/model_check/explorer.hpp"
#include "analysis/plan_validator.hpp"
#include "analysis/race_checker.hpp"
#include "analysis/symbolic/crossover.hpp"
#include "analysis/symbolic/sym_shape_inference.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "compiler/compile_cache.hpp"
#include "compiler/cost_model.hpp"
#include "duet/engine.hpp"
#include "profile/profile_cache.hpp"
#include "duet/report.hpp"
#include "graph/dot.hpp"
#include "models/model_zoo.hpp"
#include "relay/relay.hpp"
#include "relay/serialize.hpp"
#include "serve/batching.hpp"
#include "serve/fleet.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "serve/simulator.hpp"
#include "serve/workload.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/drift.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/slo_monitor.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"

namespace {

// Help requested explicitly (--help/-h) exits 0; a usage error exits 2, so
// scripts and CI can tell "misuse" from "asked for the manual".
[[noreturn]] void usage_exit(const char* argv0, int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s [--model <name> | --relay <file>] [--scheduler <name>]\n"
               "          [--no-fallback] [--nested <N>] [--runs <N>]\n"
               "          [--trace <file>] [--dot <file>] [--dump <file>]\n"
               "          [--breakdown] [--json] [--no-cache]\n"
               "       %s verify <model>... | --all [--relay <file>]\n"
               "          [--scheduler <name>]\n"
               "       %s analyze <model>... | --all [--relay <file>]\n"
               "          [--scheduler <name>] [--json]\n"
               "       %s lint <model>... | --all [--sarif <path>] [--json]\n"
               "          [--scheduler <name>]\n"
               "       %s trace <model>... | --all [--out <dir>]\n"
               "          [--scheduler <name>]\n"
               "       %s stats <model>... | --all [--json]\n"
               "          [--scheduler <name>]\n"
               "       %s schedule <model>... | --all [--cache-dir <dir>]\n"
               "          [--no-cache] [--scheduler <name>]\n"
               "       %s cache stats | clear [--cache-dir <dir>]\n"
               "       %s serve-bench <model>... | --all [--qps <Q>]\n"
               "          [--workers <N>] [--deadline-ms <D>] [--requests <N>]\n"
               "          [--json] [--out <dir>] [--metrics-out <path>]\n"
               "          [--scheduler <name>]\n"
               "          [--models <a,b,..>] [--tenants <N>] [--max-batch <B>]\n"
               "          [--verify-batching]\n"
               "       %s flight <model>... | --all [--dump <dir>]\n"
               "          [--workers <N>] [--requests <N>] [--storm <N>]\n"
               "          [--seed <S>] [--json] [--scheduler <name>]\n"
               "       %s shapes <model>... | --all [--symbolic]\n"
               "          [--sym NAME=LO..HI]... [--json]\n"
               "       %s crossover <model>... | --all [--sym NAME=LO..HI]...\n"
               "          [--json]\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
               argv0, argv0, argv0);
  std::exit(code);
}

[[noreturn]] void usage(const char* argv0) { usage_exit(argv0, 2); }

// Strict numeric flag parsing: the whole token must parse, and failures are
// a usage error (exit 2), never an uncaught std::stoi abort.
int parse_int(const char* argv0, const std::string& flag,
              const std::string& text) {
  try {
    size_t pos = 0;
    const int value = std::stoi(text, &pos);
    if (pos == text.size()) return value;
  } catch (const std::exception&) {
  }
  std::fprintf(stderr, "invalid integer for %s: \"%s\"\n", flag.c_str(),
               text.c_str());
  usage(argv0);
}

double parse_double(const char* argv0, const std::string& flag,
                    const std::string& text) {
  try {
    size_t pos = 0;
    const double value = std::stod(text, &pos);
    if (pos == text.size()) return value;
  } catch (const std::exception&) {
  }
  std::fprintf(stderr, "invalid number for %s: \"%s\"\n", flag.c_str(),
               text.c_str());
  usage(argv0);
}

// The one model-list resolver behind every "<model>... | --all" subcommand
// (and serve-bench's comma-separated --models): the whole zoo for --all,
// then validation of the final list. An empty list or a name the zoo does
// not know is a usage error — exit 2 with the valid names printed — never a
// mid-run throw that exits 1 and looks like a runtime failure to CI.
void append_all_models(std::vector<std::string>* names) {
  for (const std::string& name : duet::models::zoo_model_names()) {
    names->push_back(name);
  }
}

void append_csv_models(const std::string& csv, std::vector<std::string>* names) {
  std::string token;
  std::istringstream in(csv);
  while (std::getline(in, token, ',')) {
    if (!token.empty()) names->push_back(token);
  }
}

std::vector<std::string> resolve_model_list(const char* argv0,
                                            std::vector<std::string> names,
                                            bool allow_empty = false) {
  const std::vector<std::string>& zoo = duet::models::zoo_model_names();
  if (names.empty()) {
    if (allow_empty) return names;
    std::fprintf(stderr, "no models named (pass <model>... or --all)\n");
    usage(argv0);
  }
  for (const std::string& name : names) {
    if (std::find(zoo.begin(), zoo.end(), name) == zoo.end()) {
      std::fprintf(stderr, "unknown model: %s\nknown models:", name.c_str());
      for (const std::string& known : zoo) {
        std::fprintf(stderr, " %s", known.c_str());
      }
      std::fprintf(stderr, "\n");
      usage(argv0);
    }
  }
  return names;
}

// Lints one model through the whole pipeline. Returns true when every stage
// verifies clean; prints structured diagnostics otherwise.
bool verify_one(const std::string& label, duet::Graph model,
                const duet::DuetOptions& options) {
  using namespace duet;
  std::printf("verify %-12s ", label.c_str());
  std::fflush(stdout);

  // Stage 1: raw graph well-formedness.
  VerifyResult graph_result = verify_graph(model);
  if (!graph_result.ok()) {
    std::printf("FAIL (graph: %zu violations)\n%s", graph_result.error_count(),
                graph_result.to_string().c_str());
    return false;
  }

  // Stage 2: the whole-model pass pipeline in checked mode (the verifier
  // runs after every pass inside PassManager::run). DuetEngine then compiles
  // per-subgraph with the same checked pipeline, partitions, schedules, and
  // validates placement + plan internally; we re-run the validators here to
  // report stage-by-stage counts.
  try {
    ScopedVerification checked(true);
    PassManager::standard(options.compile).run(model);
    DuetEngine engine(std::move(model), options);
    VerifyResult partition_result =
        verify_partition(engine.model(), engine.partition());
    VerifyResult placement_result =
        verify_placement(engine.plan().placement(), engine.partition());
    VerifyResult plan_result = verify_plan(engine.plan());
    if (!partition_result.ok() || !placement_result.ok() || !plan_result.ok()) {
      std::printf("FAIL\n%s%s%s", partition_result.to_string().c_str(),
                  placement_result.to_string().c_str(),
                  plan_result.to_string().c_str());
      return false;
    }
    std::printf(
        "OK  graph %zu nodes | %zu subgraphs | %s | %zu transfers | %zu warnings\n",
        engine.model().num_nodes(), engine.partition().subgraphs.size(),
        engine.report().fell_back ? "single-device" : "heterogeneous",
        engine.plan().transfers().size(),
        graph_result.warning_count() + plan_result.warning_count());
    return true;
  } catch (const VerifyError& e) {
    std::printf("FAIL\n%s\n", e.what());
    return false;
  }
}

// Runs the dataflow analysis suite over one model's built plan. Returns true
// when the arena beats (or ties) the naive footprint on every device and the
// happens-before race check is clean. `detail` additionally prints the full
// interval and slot tables; `json` emits one validated document per model
// instead of the summary line.
bool analyze_one(const std::string& label, duet::Graph model,
                 const duet::DuetOptions& options, bool detail, bool json) {
  using namespace duet;
  if (!json) {
    std::printf("analyze %-12s ", label.c_str());
    std::fflush(stdout);
  }
  try {
    ScopedVerification checked(true);
    DuetEngine engine(std::move(model), options);
    const ExecutionPlan& plan = engine.plan();
    const MemoryPlan* memory = plan.memory_plan();
    if (memory == nullptr) {
      std::printf(json ? "{\"model\":\"%s\",\"ok\":false,"
                         "\"error\":\"plan carries no memory plan\"}\n"
                       : "FAIL (plan carries no memory plan)\n",
                  telemetry::json_escape(label).c_str());
      return false;
    }

    bool ok = true;
    uint64_t arena_total = 0;
    uint64_t naive_total = 0;
    for (int d = 0; d < kNumDeviceKinds; ++d) {
      const DeviceKind dev = static_cast<DeviceKind>(d);
      arena_total += memory->arena_bytes(dev);
      naive_total += memory->naive_bytes(dev);
      // Acceptance bound: packing must never regress past one-buffer-per-
      // tensor on any device.
      if (memory->arena_bytes(dev) > memory->naive_bytes(dev)) ok = false;
    }
    const VerifyResult races = verify_races(plan);
    ok &= races.ok();

    const double reduction =
        naive_total > 0
            ? 100.0 * (1.0 - static_cast<double>(arena_total) /
                                 static_cast<double>(naive_total))
            : 0.0;
    if (json) {
      std::string doc = "{\"model\":\"" + telemetry::json_escape(label) +
                        "\",\"ok\":" + (ok ? "true" : "false");
      for (int d = 0; d < kNumDeviceKinds; ++d) {
        const DeviceKind dev = static_cast<DeviceKind>(d);
        doc += std::string(",\"") + device_kind_name(dev) + "\":{\"arena_bytes\":" +
               std::to_string(memory->arena_bytes(dev)) + ",\"naive_bytes\":" +
               std::to_string(memory->naive_bytes(dev)) + "}";
      }
      doc += ",\"slots\":" + std::to_string(memory->slots().size());
      doc += ",\"saved_pct\":" + telemetry::json_number(reduction);
      doc += ",\"race_errors\":" + std::to_string(races.error_count()) + "}";
      std::string err;
      if (!telemetry::validate_json(doc, &err)) {
        std::fprintf(stderr, "analyze %s: invalid JSON produced: %s\n",
                     label.c_str(), err.c_str());
        return false;
      }
      std::printf("%s\n", doc.c_str());
      return ok;
    }
    std::printf("%s  arena %s vs naive %s (%.1f%% saved) | %zu slots | races: %zu\n",
                ok ? "OK " : "FAIL", human_bytes(arena_total).c_str(),
                human_bytes(naive_total).c_str(), reduction,
                memory->slots().size(), races.error_count());
    if (!races.ok()) std::printf("%s", races.to_string().c_str());
    if (detail) {
      const LivenessInfo live = analyze_liveness(plan);
      std::printf("%s", live.to_string(plan.parent()).c_str());
      std::printf("%s", memory->to_string(&plan.parent()).c_str());
    }
    return ok;
  } catch (const VerifyError& e) {
    if (json) {
      std::printf("{\"model\":\"%s\",\"ok\":false}\n",
                  telemetry::json_escape(label).c_str());
    } else {
      std::printf("FAIL\n%s\n", e.what());
    }
    return false;
  }
}

// --- lint ---------------------------------------------------------------------

// {"rule":...,"severity":...,"artifact":...,"subgraph":...,"node":...,...}
std::string diagnostic_json(const duet::Diagnostic& d) {
  using duet::telemetry::json_escape;
  std::string out = "{\"rule\":\"" + json_escape(d.rule) + "\"";
  out += std::string(",\"severity\":\"") + duet::severity_name(d.severity) + "\"";
  if (!d.location.artifact.empty()) {
    out += ",\"artifact\":\"" + json_escape(d.location.artifact) + "\"";
  }
  if (d.subgraph >= 0) out += ",\"subgraph\":" + std::to_string(d.subgraph);
  if (d.node != duet::kInvalidNode) out += ",\"node\":" + std::to_string(d.node);
  if (d.location.step >= 0) {
    out += ",\"step\":" + std::to_string(d.location.step);
  }
  if (!d.context.empty()) out += ",\"pass\":\"" + json_escape(d.context) + "\"";
  out += ",\"message\":\"" + json_escape(d.message) + "\"}";
  return out;
}

std::string lint_document(const std::string& label,
                          const duet::VerifyResult& result) {
  std::string doc = "{\"artifact\":\"" + duet::telemetry::json_escape(label) +
                    "\",\"errors\":" + std::to_string(result.error_count()) +
                    ",\"warnings\":" + std::to_string(result.warning_count()) +
                    ",\"diagnostics\":[";
  for (size_t i = 0; i < result.diagnostics().size(); ++i) {
    if (i != 0) doc += ",";
    doc += diagnostic_json(result.diagnostics()[i]);
  }
  doc += "]}";
  return doc;
}

// The unified static-analysis suite over one model: every checker in
// src/analysis plus the lint passes, collected (never thrown) so one run
// reports every finding. The plan-swap audit gets a recalibration-style
// flipped-placement plan as the retired snapshot.
duet::VerifyResult lint_model(const std::string& label, duet::Graph model,
                              duet::DuetOptions options) {
  using namespace duet;
  // Fallback would collapse the plan to one device and leave the transfer
  // passes nothing to check; the engine's own checked-mode hooks are off
  // because this run reports findings instead of throwing on the first.
  options.enable_fallback = false;
  VerifyResult all;
  all.merge(verify_graph(model));
  ScopedVerification report_dont_throw(false);
  DuetEngine engine(std::move(model), options);
  all.merge(verify_partition(engine.model(), engine.partition()));
  all.merge(verify_placement(engine.plan().placement(), engine.partition()));
  all.merge(verify_plan(engine.plan()));
  all.merge(verify_races(engine.plan()));

  lint::LintInput input = lint::make_input(engine.plan());
  ExecutionPlan previous;
  std::optional<PlanView> previous_view;
  if (engine.plan().placement().size() > 0) {
    Placement flipped = engine.plan().placement();
    flipped.flip(0);
    previous = engine.build_plan_for(flipped);
    previous_view.emplace(PlanView{
        previous.parent(), previous.partition(), previous.placement(),
        previous.subgraphs(), previous.consumers(), previous.transfers(),
        previous.step_order()});
    input.previous = &*previous_view;
    input.previous_memory = previous.memory_plan();
  }
  all.merge(lint::LintSuite::standard().run(input));
  all.set_artifact(label);
  all.sort();
  return all;
}

// Parses a "--sym NAME=LO..HI" range spec. Returns false (leaving outputs
// untouched) on malformed input — the caller turns that into a usage error.
bool parse_sym_spec(const std::string& spec, std::string* name,
                    duet::symbolic::SymRange* range) {
  const size_t eq = spec.find('=');
  const size_t dots = spec.find("..");
  if (eq == std::string::npos || eq == 0 || dots == std::string::npos ||
      dots < eq + 2 || dots + 2 >= spec.size() + 1) {
    return false;
  }
  const std::string sym = spec.substr(0, eq);
  const std::string lo_text = spec.substr(eq + 1, dots - eq - 1);
  const std::string hi_text = spec.substr(dots + 2);
  if (lo_text.empty() || hi_text.empty()) return false;
  try {
    size_t pos = 0;
    const long long lo = std::stoll(lo_text, &pos);
    if (pos != lo_text.size()) return false;
    pos = 0;
    const long long hi = std::stoll(hi_text, &pos);
    if (pos != hi_text.size()) return false;
    if (lo < 1 || hi < lo) return false;
    *name = sym;
    range->lo = lo;
    range->hi = hi;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

// `duet_cli shapes`: per-node shape table, concrete by default, symbolic
// (polynomials of the batch symbol) with --symbolic. Returns false when
// symbolic inference reports any error-severity diagnostic (warnings — e.g.
// a batch-monomorphic reshape — are reported but do not fail the command).
bool shapes_one(const std::string& label, const duet::Graph& model,
                bool symbolic_mode, const duet::symbolic::SymbolicOptions& opts,
                bool json) {
  using namespace duet;
  using telemetry::json_escape;

  symbolic::SymbolicShapes sym;
  if (symbolic_mode) sym = symbolic::infer_symbolic(model, opts);
  const auto shape_text = [&](const Node& n) {
    return symbolic_mode
               ? sym.shapes[static_cast<size_t>(n.id)].to_string()
               : n.out_shape.to_string();
  };

  if (json) {
    std::string doc = "{\"model\":\"" + json_escape(label) +
                      "\",\"symbolic\":" + (symbolic_mode ? "true" : "false");
    if (symbolic_mode) {
      doc += ",\"domain\":{";
      bool first = true;
      for (const auto& [name, range] : sym.domain) {
        if (!first) doc += ",";
        first = false;
        doc += "\"" + json_escape(name) + "\":{\"lo\":" +
               std::to_string(range.lo) + ",\"hi\":" + std::to_string(range.hi) +
               "}";
      }
      doc += "}";
    }
    doc += ",\"nodes\":[";
    for (const Node& n : model.nodes()) {
      if (n.id != 0) doc += ",";
      doc += "{\"id\":" + std::to_string(n.id) + ",\"op\":\"" +
             json_escape(op_name(n.op)) + "\",\"name\":\"" +
             json_escape(n.name) + "\",\"shape\":\"" +
             json_escape(shape_text(n)) + "\",\"dtype\":\"" +
             json_escape(dtype_name(n.out_dtype)) + "\"}";
    }
    doc += "],\"errors\":" + std::to_string(sym.diagnostics.error_count()) +
           ",\"warnings\":" + std::to_string(sym.diagnostics.warning_count()) +
           ",\"diagnostics\":[";
    const auto& diags = sym.diagnostics.diagnostics();
    for (size_t i = 0; i < diags.size(); ++i) {
      if (i != 0) doc += ",";
      doc += diagnostic_json(diags[i]);
    }
    doc += "]}";
    std::string err;
    if (!telemetry::validate_json(doc, &err)) {
      std::fprintf(stderr, "shapes %s: invalid JSON produced: %s\n",
                   label.c_str(), err.c_str());
      return false;
    }
    std::printf("%s\n", doc.c_str());
    return sym.diagnostics.ok();
  }

  std::printf("shapes %s (%zu nodes%s)\n", label.c_str(), model.num_nodes(),
              symbolic_mode ? ", symbolic" : "");
  if (symbolic_mode) {
    for (const auto& [name, range] : sym.domain) {
      std::printf("  symbol %s in [%lld, %lld]\n", name.c_str(),
                  static_cast<long long>(range.lo),
                  static_cast<long long>(range.hi));
    }
  }
  for (const Node& n : model.nodes()) {
    std::printf("  %%%-4d %-18s %-24s %s %s\n", n.id, op_name(n.op),
                n.name.c_str(), shape_text(n).c_str(),
                dtype_name(n.out_dtype));
  }
  if (!sym.diagnostics.diagnostics().empty()) {
    std::printf("%s", sym.diagnostics.to_string().c_str());
  }
  return sym.diagnostics.ok();
}

// `duet_cli crossover`: optimize + partition the model like the engine
// would, then scan the batch symbol and report where the analytic CPU/GPU
// preference of each subgraph flips.
bool crossover_one(const std::string& label, duet::Graph model,
                   const duet::symbolic::SymbolicOptions& sym_opts,
                   const duet::symbolic::CrossoverOptions& x_opts, bool json) {
  using namespace duet;
  const Graph optimized =
      PassManager::standard(CompileOptions::compiler_defaults()).run(std::move(model));
  const Partition partition = partition_phased(optimized);
  const symbolic::SymbolicShapes shapes =
      symbolic::infer_symbolic(optimized, sym_opts);
  const symbolic::CrossoverReport report =
      symbolic::analyze_crossover(optimized, partition, shapes, x_opts);
  if (json) {
    const std::string doc = report.to_json();
    std::string err;
    if (!telemetry::validate_json(doc, &err)) {
      std::fprintf(stderr, "crossover %s: invalid JSON produced: %s\n",
                   label.c_str(), err.c_str());
      return false;
    }
    std::printf("%s\n", doc.c_str());
  } else {
    std::printf("%s", report.to_string().c_str());
  }
  return shapes.diagnostics.ok();
}

// One full telemetry capture: enables the layer, runs the whole pipeline
// (partition, profile, schedule, plan), then one numeric inference per
// executor — SimExecutor (modeled virtual time) and ThreadedExecutor (real
// threads, wall clock) — and snapshots spans, metrics, and drift.
struct TelemetryCapture {
  duet::DriftReport sim_drift;
  duet::DriftReport threaded_drift;
  std::string trace_json;    // merged Chrome trace (spans + modeled timeline)
  std::string metrics_json;  // registry snapshot
  std::string serve_json;    // serve-plane counters (empty without a burst)
};

// `serve_burst` additionally pushes a short real-threaded burst through a
// DuetServer so the document covers the serving plane (plan version,
// offered/completed/shed/rejected, SLO breaches) — `stats` wants that view,
// `trace` does not (it would dilute the single-inference trace).
TelemetryCapture capture_telemetry(const std::string& label, duet::Graph model,
                                   duet::DuetOptions options,
                                   bool serve_burst = false) {
  using namespace duet;
  // Fallback would execute the unpartitioned single-device code, leaving no
  // per-subgraph exec events to join the estimates against.
  options.enable_fallback = false;
  telemetry::ScopedTelemetry on(true);
  telemetry::MetricsRegistry::instance().reset();
  telemetry::SpanCollector::instance().clear();

  Graph serve_model = model;  // DuetServer below needs its own copy
  DuetEngine engine(std::move(model), options);
  Rng rng(1);
  const auto feeds = models::make_random_feeds(engine.model(), rng);
  ExecutionResult sim = engine.infer(feeds);
  ExecutionResult threaded = engine.infer_threaded(feeds);

  TelemetryCapture cap;
  if (serve_burst) {
    serve::ServeOptions sopts;
    sopts.workers = 2;
    sopts.queue_capacity = 16;
    sopts.engine = options;
    serve::DuetServer server(std::move(serve_model), sopts);
    std::vector<std::future<serve::Response>> futures;
    for (int i = 0; i < 8; ++i) futures.push_back(server.submit(feeds));
    for (auto& f : futures) f.get();
    server.drain();
    const serve::ServerStats ss = server.stats();
    std::string s = "{";
    s += "\"plan_version\":" + std::to_string(ss.plan_version) + ",";
    s += "\"offered\":" + std::to_string(ss.admission.offered) + ",";
    s += "\"completed\":" + std::to_string(ss.admission.completed) + ",";
    s += "\"shed\":" + std::to_string(ss.admission.shed) + ",";
    s += "\"rejected\":" + std::to_string(ss.admission.rejected) + ",";
    s += "\"slo_breaches\":" + std::to_string(ss.slo_breaches) + ",";
    s += "\"flight_dumps\":" + std::to_string(ss.flight_dumps) + ",";
    s += "\"recalibrations\":" + std::to_string(ss.recalibrations) + ",";
    s += "\"swaps\":" + std::to_string(ss.swap_count) + "}";
    cap.serve_json = std::move(s);
  }
  cap.sim_drift = compute_drift(
      label, "sim", engine.partition(), engine.plan().placement(),
      engine.report().profiles, sim.timeline,
      engine.report().schedule.est_latency_s, sim.latency_s);
  cap.threaded_drift = compute_drift(
      label, "threaded", engine.partition(), engine.plan().placement(),
      engine.report().profiles, threaded.timeline,
      engine.report().schedule.est_latency_s, threaded.latency_s);
  const std::vector<telemetry::Span> spans =
      telemetry::SpanCollector::instance().drain();
  cap.trace_json = telemetry::export_chrome_trace(spans, &sim.timeline);
  cap.metrics_json = telemetry::MetricsRegistry::instance().to_json();
  return cap;
}

// {"model":...,"metrics":{...},["serve":{...},]"drift":{"sim":...,...}}
std::string stats_document(const TelemetryCapture& cap, const std::string& label) {
  using duet::telemetry::json_escape;
  std::string out = "{\"model\":\"" + json_escape(label) + "\",";
  out += "\"metrics\":" + cap.metrics_json + ",";
  if (!cap.serve_json.empty()) out += "\"serve\":" + cap.serve_json + ",";
  out += "\"drift\":{\"sim\":" + cap.sim_drift.to_json() +
         ",\"threaded\":" + cap.threaded_drift.to_json() + "}}";
  return out;
}

// Captures one model and writes <out>/<label>.trace.json plus
// <out>/<label>.stats.json, JSON-validating both before touching the disk.
bool trace_one(const std::string& label, duet::Graph model,
               const duet::DuetOptions& options, const std::string& out_dir) {
  using namespace duet;
  std::printf("trace %-12s ", label.c_str());
  std::fflush(stdout);
  const TelemetryCapture cap = capture_telemetry(label, std::move(model), options);
  const std::string stats = stats_document(cap, label);

  std::string err;
  if (!telemetry::validate_json(cap.trace_json, &err) ||
      !telemetry::validate_json(stats, &err)) {
    std::printf("FAIL (invalid JSON: %s)\n", err.c_str());
    return false;
  }
  const std::filesystem::path dir(out_dir.empty() ? "." : out_dir);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const auto write = [](const std::filesystem::path& p, const std::string& text) {
    std::ofstream out(p);
    out << text;
    return out.good();
  };
  const std::filesystem::path trace_path = dir / (label + ".trace.json");
  const std::filesystem::path stats_path = dir / (label + ".stats.json");
  if (!write(trace_path, cap.trace_json) || !write(stats_path, stats)) {
    std::printf("FAIL (cannot write under %s)\n", dir.string().c_str());
    return false;
  }
  std::printf("OK  %s (%zu KiB) + %s | drift sim %+.1f%% threaded %+.1f%%\n",
              trace_path.string().c_str(), cap.trace_json.size() / 1024,
              stats_path.filename().string().c_str(),
              100.0 * cap.sim_drift.total_rel_err(),
              100.0 * cap.threaded_drift.total_rel_err());
  return true;
}

// Captures one model and prints drift tables + headline metrics (text) or
// one combined JSON document per model.
bool stats_one(const std::string& label, duet::Graph model,
               const duet::DuetOptions& options, bool json) {
  using namespace duet;
  const TelemetryCapture cap = capture_telemetry(label, std::move(model),
                                                 options, /*serve_burst=*/true);
  if (json) {
    std::printf("%s\n", stats_document(cap, label).c_str());
    return true;
  }
  std::printf("%s%s", cap.sim_drift.to_string().c_str(),
              cap.threaded_drift.to_string().c_str());
  const auto& reg = telemetry::MetricsRegistry::instance();
  std::printf("metrics:\n");
  for (const auto& [name, value] : reg.counters()) {
    if (value == 0) continue;
    std::printf("  %-38s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : reg.gauges()) {
    if (value == 0.0) continue;
    std::printf("  %-38s %.0f\n", name.c_str(), value);
  }
  for (const auto& [name, h] : reg.histograms()) {
    if (h.count == 0) continue;
    std::printf("  %-38s n=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f\n",
                name.c_str(), static_cast<unsigned long long>(h.count), h.mean,
                h.p50, h.p95, h.p99);
  }
  return true;
}

std::string default_cache_dir() {
  const char* env = std::getenv("DUET_CACHE_DIR");
  return (env != nullptr && env[0] != '\0') ? env : ".duet-cache";
}

std::string profile_cache_file(const std::string& dir) {
  return dir + "/profile_cache.v1.txt";
}

// Runs the full pipeline for one model (the engine itself opens/flushes the
// disk cache when options.profile_cache_dir is set) and prints the schedule
// headline plus the profile-cache traffic this model caused.
bool schedule_one(const std::string& label, duet::Graph model,
                  const duet::DuetOptions& options) {
  using namespace duet;
  std::printf("schedule %-12s ", label.c_str());
  std::fflush(stdout);
  const ProfileCache::Stats before = ProfileCache::instance().stats();
  DuetEngine engine(std::move(model), options);
  const ProfileCache::Stats after = ProfileCache::instance().stats();
  const DuetReport& r = engine.report();
  std::printf(
      "OK  %zu subgraphs | %s | est %s | profile cache +%llu hit +%llu miss\n",
      engine.partition().subgraphs.size(),
      r.fell_back ? "single-device" : "heterogeneous",
      human_time(r.schedule.est_latency_s).c_str(),
      static_cast<unsigned long long>(after.hits - before.hits),
      static_cast<unsigned long long>(after.misses - before.misses));
  return true;
}

// Prints the on-disk profile cache header + entry count and whether its
// calibration fingerprint still matches the current default testbed.
int cache_stats_cmd(const std::string& dir) {
  using namespace duet;
  const std::string path = profile_cache_file(dir);
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::printf("profile cache %s: absent\n", path.c_str());
    return 0;
  }
  char magic[32] = {0};
  int version = 0;
  uint64_t calib = 0;
  if (std::fscanf(f, "%31s v%d calib %" SCNx64, magic, &version, &calib) != 3) {
    std::fclose(f);
    std::printf("profile cache %s: unreadable header (next run rewrites it)\n",
                path.c_str());
    return 0;
  }
  size_t entries = 0;
  int c = 0;
  bool line_pending = false;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      if (line_pending) ++entries;
      line_pending = false;
    } else if (!std::isspace(c)) {
      line_pending = true;
    }
  }
  if (line_pending) ++entries;
  std::fclose(f);
  const uint64_t current =
      calibration_fingerprint(make_default_device_pair(DuetOptions{}.seed));
  std::printf("profile cache %s\n  %s v%d | %zu entries | calibration %016" PRIx64
              " (%s the current testbed)\n",
              path.c_str(), magic, version, entries, calib,
              calib == current ? "matches" : "STALE against");
  return 0;
}

// Deletes the on-disk profile cache and drops both in-memory caches.
int cache_clear_cmd(const std::string& dir) {
  using namespace duet;
  ProfileCache::instance().clear();
  CompileCache::instance().clear();
  const std::string path = profile_cache_file(dir);
  std::error_code ec;
  const bool removed = std::filesystem::remove(path, ec);
  if (ec) {
    std::fprintf(stderr, "cannot remove %s: %s\n", path.c_str(),
                 ec.message().c_str());
    return 1;
  }
  if (removed) {
    std::printf("removed %s\n", path.c_str());
  } else {
    std::printf("profile cache %s: already absent\n", path.c_str());
  }
  return 0;
}

struct ServeBenchConfig {
  int workers = 4;
  double qps = 0.0;          // nominal offered load; 0 = half of saturation
  double deadline_ms = 0.0;  // 0 = 10x the modeled service time
  int requests = 512;        // per simulated leg
  int server_requests = 48;  // real-threaded leg
  uint64_t seed = 42;
  bool json = false;
  std::string out_dir;      // Chrome trace destination; empty = skip
  std::string metrics_out;  // Prometheus exposition path; empty = skip
  std::string scheduler = "greedy-correction";
};

// {"offered_qps":...,"throughput_qps":...,"p50_s":...,...}
std::string serve_leg_json(double offered, const duet::serve::ServeStats& s) {
  using duet::telemetry::json_number;
  std::string out = "{";
  out += "\"offered_qps\":" + json_number(offered) + ",";
  out += "\"throughput_qps\":" + json_number(s.throughput_qps) + ",";
  out += "\"p50_s\":" + json_number(s.sojourn.p50) + ",";
  out += "\"p95_s\":" + json_number(s.sojourn.p95) + ",";
  out += "\"p99_s\":" + json_number(s.sojourn.p99) + ",";
  out += "\"mean_s\":" + json_number(s.sojourn.mean) + ",";
  out += "\"shed_rate\":" + json_number(s.admission.shed_rate()) + ",";
  out += "\"reject_rate\":" + json_number(s.admission.reject_rate()) + ",";
  out += "\"completed\":" + std::to_string(s.admission.completed) + ",";
  out += "\"completed_late\":" + std::to_string(s.admission.completed_late) + ",";
  out += "\"worker_busy_frac\":" + json_number(s.worker_busy_frac) + ",";
  out += "\"max_queue_depth\":" + std::to_string(s.max_queue_depth) + "}";
  return out;
}

// One model through the serving bench: a real-threaded DuetServer leg (with
// one recalibration pass), then deterministic virtual-time legs at nominal
// and peak offered load, plus the single-worker saturation baseline every
// throughput claim is measured against.
bool serve_bench_one(const std::string& label, duet::Graph model,
                     const ServeBenchConfig& cfg) {
  using namespace duet;
  if (!cfg.json) {
    std::printf("serve-bench %-12s ", label.c_str());
    std::fflush(stdout);
  }

  const bool want_trace = !cfg.out_dir.empty();
  const bool want_metrics = !cfg.metrics_out.empty();
  telemetry::ScopedTelemetry telemetry_on(want_trace || want_metrics);
  if (want_trace) telemetry::SpanCollector::instance().clear();
  if (want_metrics) telemetry::MetricsRegistry::instance().reset();

  serve::ServeOptions sopts;
  sopts.workers = cfg.workers;
  sopts.queue_capacity = static_cast<size_t>(std::max(cfg.server_requests, 16));
  sopts.engine.scheduler = cfg.scheduler;
  sopts.engine.seed = cfg.seed;
  serve::DuetServer server(std::move(model), sopts);

  // Real-threaded leg: submit a burst, drain it, then one recalibration
  // pass against the drift the workers just recorded.
  Rng feed_rng(1);
  const auto feeds = models::make_random_feeds(server.engine().model(), feed_rng);
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(static_cast<size_t>(cfg.server_requests));
  for (int i = 0; i < cfg.server_requests; ++i) {
    futures.push_back(server.submit(feeds));
  }
  size_t server_ok = 0;
  double service_s = 0.0;  // modeled service time (noise off: constant)
  for (auto& f : futures) {
    const serve::Response r = f.get();
    if (r.status == serve::RequestStatus::kOk) {
      ++server_ok;
      service_s = r.modeled_latency_s;
    }
  }
  server.drain();
  const serve::RecalibrationResult recal = server.recalibrate_now();
  const serve::ServerStats sstats = server.stats();
  if (service_s <= 0.0) {
    std::printf("FAIL (no request completed)\n");
    return false;
  }

  // Virtual-time legs. Saturation rate of the pool is workers/service; the
  // single-worker run at peak load is the sequential single-engine loop
  // baseline (it admits work back to back, exactly one in service).
  const double saturation_qps = static_cast<double>(cfg.workers) / service_s;
  const double nominal_qps = cfg.qps > 0.0 ? cfg.qps : 0.5 * saturation_qps;
  const double peak_qps = 2.0 * saturation_qps;
  const double deadline_s =
      cfg.deadline_ms > 0.0 ? cfg.deadline_ms / 1e3 : 10.0 * service_s;
  const auto service = [service_s](size_t) { return service_s; };

  serve::ServeSimConfig sim;
  sim.queue_capacity = 128;
  sim.deadline_s = deadline_s;

  Rng trace_rng(cfg.seed + 7);
  sim.workers = 1;
  const serve::ServeStats sequential = serve::simulate_serving(
      serve::poisson_trace(peak_qps, cfg.requests, trace_rng), service, sim);

  Rng nominal_rng(cfg.seed + 7);
  sim.workers = cfg.workers;
  const std::vector<double> nominal_arrivals =
      serve::poisson_trace(nominal_qps, cfg.requests, nominal_rng);
  const serve::ServeStats nominal =
      serve::simulate_serving(nominal_arrivals, service, sim);

  Rng peak_rng(cfg.seed + 7);
  const serve::ServeStats peak = serve::simulate_serving(
      serve::poisson_trace(peak_qps, cfg.requests, peak_rng), service, sim);

  const double speedup = sequential.throughput_qps > 0.0
                             ? peak.throughput_qps / sequential.throughput_qps
                             : 0.0;

  bool trace_ok = true;
  if (want_trace) {
    const std::vector<telemetry::Span> spans =
        telemetry::SpanCollector::instance().drain();
    const std::string trace = telemetry::export_chrome_trace(spans, nullptr);
    std::string err;
    std::filesystem::path dir(cfg.out_dir);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::filesystem::path path = dir / (label + ".serve.trace.json");
    std::ofstream out(path);
    out << trace;
    trace_ok = telemetry::validate_json(trace, &err) && out.good();
    if (!cfg.json && trace_ok) {
      std::printf("[trace %s] ", path.string().c_str());
    }
  }

  // One Prometheus exposition of everything the run recorded (serve.*
  // counters, executor histograms, ...). Appending per model would corrupt
  // the format, so the last model of a multi-model invocation wins.
  bool metrics_ok = true;
  if (want_metrics) {
    const std::string prom =
        telemetry::to_prometheus_text(telemetry::MetricsRegistry::instance());
    const std::filesystem::path path(cfg.metrics_out);
    std::error_code ec;
    if (path.has_parent_path()) {
      std::filesystem::create_directories(path.parent_path(), ec);
    }
    std::ofstream prom_out(path);
    prom_out << prom;
    metrics_ok = prom_out.good();
    if (!cfg.json && metrics_ok) {
      std::printf("[metrics %s] ", path.string().c_str());
    }
  }

  if (cfg.json) {
    using telemetry::json_escape;
    using telemetry::json_number;
    std::string doc = "{";
    doc += "\"model\":\"" + json_escape(label) + "\",";
    doc += "\"workers\":" + std::to_string(cfg.workers) + ",";
    doc += "\"service_s\":" + json_number(service_s) + ",";
    doc += "\"deadline_s\":" + json_number(deadline_s) + ",";
    doc += "\"sequential_qps\":" + json_number(sequential.throughput_qps) + ",";
    doc += "\"speedup_vs_sequential\":" + json_number(speedup) + ",";
    doc += "\"nominal\":" + serve_leg_json(nominal_qps, nominal) + ",";
    doc += "\"peak\":" + serve_leg_json(peak_qps, peak) + ",";
    doc += "\"server\":{";
    doc += "\"requests\":" + std::to_string(cfg.server_requests) + ",";
    doc += "\"completed\":" + std::to_string(sstats.admission.completed) + ",";
    doc += "\"rejected\":" + std::to_string(sstats.admission.rejected) + ",";
    doc += "\"shed\":" + std::to_string(sstats.admission.shed) + ",";
    doc += "\"wall_wait_p95_s\":" + json_number(sstats.wall_wait.p95) + ",";
    doc += "\"modeled_mean_s\":" + json_number(sstats.modeled_latency.mean) + ",";
    doc += "\"drift_samples\":" + std::to_string(sstats.drift_samples) + ",";
    doc += "\"recalibrations\":" + std::to_string(sstats.recalibrations) + ",";
    doc += "\"recal_predicted_current_s\":" +
           json_number(recal.predicted_current_s) + ",";
    doc += "\"recal_predicted_new_s\":" + json_number(recal.predicted_new_s) + ",";
    doc += "\"swaps\":" + std::to_string(sstats.swap_count) + "}";
    doc += "}";
    std::string err;
    if (!telemetry::validate_json(doc, &err)) {
      std::fprintf(stderr, "serve-bench %s: invalid JSON: %s\n", label.c_str(),
                   err.c_str());
      return false;
    }
    std::printf("%s\n", doc.c_str());
  } else {
    std::printf(
        "seq %.1f qps | %d workers peak %.1f qps (%.2fx) | nominal p50 %.3f ms "
        "p95 %.3f ms p99 %.3f ms shed %.2f%% | server %zu/%d ok, %llu recal, "
        "%llu swaps\n",
        sequential.throughput_qps, cfg.workers, peak.throughput_qps, speedup,
        nominal.sojourn.p50 * 1e3, nominal.sojourn.p95 * 1e3,
        nominal.sojourn.p99 * 1e3, 100.0 * nominal.admission.shed_rate(),
        server_ok, cfg.server_requests,
        static_cast<unsigned long long>(sstats.recalibrations),
        static_cast<unsigned long long>(sstats.swap_count));
  }
  return server_ok > 0 && trace_ok && metrics_ok;
}

// Multi-tenant fleet configuration for `serve-bench` (ISSUE 10): engaged by
// --tenants / --max-batch / --models, it fronts a ModelRegistry with the
// FleetServer instead of one DuetServer per model.
struct FleetBenchConfig {
  int workers = 2;
  int tenants = 3;        // gold/silver/bronze by default
  int64_t max_batch = 8;  // coalescing cap
  double qps = 0.0;       // virtual legs; 0 = 2x the pool's B=1 saturation
  double deadline_ms = 0.0;  // per-tenant default deadline; 0 = none
  int requests = 256;        // per virtual leg
  int server_requests = 32;  // real-threaded leg
  uint64_t seed = 42;
  bool json = false;
  std::string scheduler = "greedy-correction";
};

// {"name":...,"offered":...,...} for one tenant's admission snapshot.
std::string fleet_tenant_json(const duet::serve::FleetTenantStats& t) {
  using duet::telemetry::json_escape;
  using duet::telemetry::json_number;
  std::string out = "{";
  out += "\"name\":\"" + json_escape(t.name) + "\",";
  out += "\"offered\":" + std::to_string(t.admission.offered) + ",";
  out += "\"completed\":" + std::to_string(t.admission.completed) + ",";
  out += "\"shed\":" + std::to_string(t.admission.shed) + ",";
  out += "\"rejected\":" + std::to_string(t.admission.rejected) + ",";
  out += "\"completed_late\":" + std::to_string(t.admission.completed_late) + ",";
  out += "\"shed_rate\":" + json_number(t.admission.shed_rate()) + "}";
  return out;
}

std::string fleet_sim_json(double offered_qps,
                           const duet::serve::FleetSimStats& s) {
  using duet::telemetry::json_number;
  std::string out = "{";
  out += "\"offered_qps\":" + json_number(offered_qps) + ",";
  out += "\"throughput_qps\":" + json_number(s.throughput_qps) + ",";
  out += "\"p50_s\":" + json_number(s.sojourn.p50) + ",";
  out += "\"p99_s\":" + json_number(s.sojourn.p99) + ",";
  out += "\"mean_batch\":" + json_number(s.mean_batch) + ",";
  out += "\"batches\":" + std::to_string(s.batches) + ",";
  out += "\"coalesced_requests\":" + std::to_string(s.coalesced_requests) + ",";
  out += "\"completed\":" + std::to_string(s.total.completed) + ",";
  out += "\"shed\":" + std::to_string(s.total.shed) + ",";
  out += "\"rejected\":" + std::to_string(s.total.rejected) + ",";
  out += "\"tenants\":[";
  for (size_t i = 0; i < s.tenants.size(); ++i) {
    if (i > 0) out += ",";
    out += fleet_tenant_json(s.tenants[i]);
  }
  out += "]}";
  return out;
}

// The multi-tenant serving bench: every named model resident in one
// ModelRegistry (shared PR-4 caches), a real-threaded FleetServer leg, then
// two virtual-time legs over the same arrival trace — plans per batch
// bucket vs the single-plan baseline — so the plan-per-bucket payoff is a
// printed ratio.
bool fleet_bench(const std::vector<std::string>& names,
                 const FleetBenchConfig& cfg) {
  using namespace duet;

  serve::ModelRegistryOptions ropts;
  ropts.max_batch = cfg.max_batch;
  ropts.engine.scheduler = cfg.scheduler;
  ropts.engine.seed = cfg.seed;
  serve::ModelRegistry registry(ropts);
  for (const std::string& name : names) {
    registry.register_model(name, models::zoo_batched_factory(name));
  }
  const int num_models = static_cast<int>(registry.size());
  const std::vector<serve::TenantClass> tenants =
      serve::default_tenant_classes(
          cfg.tenants, cfg.deadline_ms > 0.0 ? cfg.deadline_ms / 1e3 : 0.0);

  // Real-threaded leg: a round-robin burst across models and tenants.
  serve::FleetOptions fopts;
  fopts.workers = cfg.workers;
  fopts.queue_capacity =
      static_cast<size_t>(std::max(cfg.server_requests, 16));
  fopts.tenants = tenants;
  fopts.max_batch = cfg.max_batch;
  serve::FleetServer server(registry, fopts);
  Rng feed_rng(3);
  std::vector<std::map<NodeId, Tensor>> feeds;
  for (int m = 0; m < num_models; ++m) {
    feeds.push_back(
        models::make_random_feeds(registry.model(m).engine().model(), feed_rng));
  }
  std::vector<std::future<serve::FleetResponse>> futures;
  for (int i = 0; i < cfg.server_requests; ++i) {
    futures.push_back(server.submit(i % num_models, i % cfg.tenants,
                                    feeds[static_cast<size_t>(i % num_models)]));
  }
  size_t server_ok = 0;
  for (auto& f : futures) {
    if (f.get().status == serve::RequestStatus::kOk) ++server_ok;
  }
  server.drain();
  const serve::FleetServerStats sstats = server.stats();
  if (server_ok == 0) {
    std::printf("FAIL (no fleet request completed)\n");
    return false;
  }

  // Virtual-time legs. Offered load defaults to 2x the pool's batch-1
  // saturation — the batch-heavy regime where coalescing and bucket plans
  // are supposed to pay.
  double mean_service1 = 0.0;
  for (int m = 0; m < num_models; ++m) {
    mean_service1 += registry.model(m).modeled_service_s(1);
  }
  mean_service1 /= static_cast<double>(num_models);
  const double saturation_qps = static_cast<double>(cfg.workers) / mean_service1;
  const double offered_qps = cfg.qps > 0.0 ? cfg.qps : 2.0 * saturation_qps;

  Rng trace_rng(cfg.seed + 11);
  const std::vector<double> arrivals =
      serve::poisson_trace(offered_qps, cfg.requests, trace_rng);
  std::vector<serve::FleetSimRequest> sim_requests;
  sim_requests.reserve(arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    serve::FleetSimRequest r;
    r.arrival_s = arrivals[i];
    r.tenant = static_cast<int>(i) % cfg.tenants;
    r.model = static_cast<int>(i) % num_models;
    sim_requests.push_back(r);
  }
  serve::FleetSimConfig sim;
  sim.workers = cfg.workers;
  sim.queue_capacity = 512;
  sim.tenants = tenants;
  sim.max_batch = cfg.max_batch;
  const auto bucketed_service = [&registry](int model, int64_t batch) {
    return registry.model(model).modeled_service_s(batch);
  };
  const auto baseline_service = [&registry](int model, int64_t batch) {
    return registry.model(model).baseline_service_s(batch);
  };
  const serve::FleetSimStats bucketed =
      serve::simulate_fleet(sim_requests, bucketed_service, sim);
  const serve::FleetSimStats baseline =
      serve::simulate_fleet(sim_requests, baseline_service, sim);
  const double throughput_ratio =
      baseline.throughput_qps > 0.0
          ? bucketed.throughput_qps / baseline.throughput_qps
          : 0.0;
  const double p99_ratio = baseline.sojourn.p99 > 0.0
                               ? bucketed.sojourn.p99 / baseline.sojourn.p99
                               : 0.0;

  const serve::RegistryCacheStats& cache = registry.cache_stats();
  if (cfg.json) {
    using telemetry::json_escape;
    using telemetry::json_number;
    std::string doc = "{\"models\":[";
    for (size_t m = 0; m < registry.size(); ++m) {
      if (m > 0) doc += ",";
      serve::ResidentModel& rm = registry.model(static_cast<int>(m));
      doc += "{\"name\":\"" + json_escape(rm.name()) + "\",";
      doc += "\"buckets\":\"" + json_escape(buckets_to_string(rm.buckets())) +
             "\",";
      doc += "\"service_b1_s\":" + json_number(rm.modeled_service_s(1)) + "}";
    }
    doc += "],";
    doc += "\"tenants\":" + std::to_string(cfg.tenants) + ",";
    doc += "\"workers\":" + std::to_string(cfg.workers) + ",";
    doc += "\"max_batch\":" + std::to_string(cfg.max_batch) + ",";
    doc += "\"registry\":{";
    doc += "\"compile_hits\":" + std::to_string(cache.compile_hits) + ",";
    doc += "\"compile_misses\":" + std::to_string(cache.compile_misses) + ",";
    doc += "\"profile_hits\":" + std::to_string(cache.profile_hits) + ",";
    doc += "\"profile_misses\":" + std::to_string(cache.profile_misses) + ",";
    doc +=
        "\"compile_dedup_ratio\":" + json_number(cache.compile_dedup_ratio()) +
        "},";
    doc += "\"server\":{";
    doc += "\"requests\":" + std::to_string(cfg.server_requests) + ",";
    doc += "\"completed\":" + std::to_string(sstats.total.completed) + ",";
    doc += "\"shed\":" + std::to_string(sstats.total.shed) + ",";
    doc += "\"rejected\":" + std::to_string(sstats.total.rejected) + ",";
    doc += "\"batches\":" + std::to_string(sstats.batches) + ",";
    doc += "\"mean_batch\":" + json_number(sstats.mean_batch) + ",";
    doc += "\"coalesced_requests\":" +
           std::to_string(sstats.coalesced_requests) + ",";
    doc += "\"tenants\":[";
    for (size_t t = 0; t < sstats.tenants.size(); ++t) {
      if (t > 0) doc += ",";
      doc += fleet_tenant_json(sstats.tenants[t]);
    }
    doc += "]},";
    doc += "\"virtual\":{";
    doc += "\"bucketed\":" + fleet_sim_json(offered_qps, bucketed) + ",";
    doc += "\"baseline\":" + fleet_sim_json(offered_qps, baseline) + ",";
    doc += "\"throughput_ratio\":" + json_number(throughput_ratio) + ",";
    doc += "\"p99_ratio\":" + json_number(p99_ratio) + "}";
    doc += "}";
    std::string err;
    if (!telemetry::validate_json(doc, &err)) {
      std::fprintf(stderr, "serve-bench fleet: invalid JSON: %s\n",
                   err.c_str());
      return false;
    }
    std::printf("%s\n", doc.c_str());
  } else {
    std::printf(
        "fleet: %d models, %d tenants, %d workers, max batch %lld\n",
        num_models, cfg.tenants, cfg.workers,
        static_cast<long long>(cfg.max_batch));
    std::printf("%s", cache.to_string().c_str());
    std::printf(
        "server leg: %zu/%d ok, %llu batches (mean %.2f), %llu coalesced\n",
        server_ok, cfg.server_requests,
        static_cast<unsigned long long>(sstats.batches), sstats.mean_batch,
        static_cast<unsigned long long>(sstats.coalesced_requests));
    for (const serve::FleetTenantStats& t : sstats.tenants) {
      std::printf("  tenant %-8s offered %llu completed %llu shed %llu "
                  "rejected %llu\n",
                  t.name.c_str(),
                  static_cast<unsigned long long>(t.admission.offered),
                  static_cast<unsigned long long>(t.admission.completed),
                  static_cast<unsigned long long>(t.admission.shed),
                  static_cast<unsigned long long>(t.admission.rejected));
    }
    std::printf(
        "virtual @ %.1f qps: bucketed %.1f qps p99 %.3f ms | baseline %.1f "
        "qps p99 %.3f ms | %.2fx throughput, p99 ratio %.2f\n",
        offered_qps, bucketed.throughput_qps, bucketed.sojourn.p99 * 1e3,
        baseline.throughput_qps, baseline.sojourn.p99 * 1e3, throughput_ratio,
        p99_ratio);
  }
  return true;
}

// The batching determinism gate behind `serve-bench --verify-batching`: a
// coalesced batch-B execution must be byte-identical to the B requests run
// alone. Placement never changes numerics, so an all-CPU plan keeps the
// whole-zoo sweep cheap (tiny variants; the same property is asserted on
// full-size plans by tests/test_fleet.cpp).
bool verify_batching_one(const std::string& name, int64_t batch) {
  using namespace duet;
  Rng rng(17);
  Graph g1 = models::build_by_name_batched(name, 1, /*tiny=*/true);
  Graph gb = models::build_by_name_batched(name, batch, /*tiny=*/true);
  DevicePair devices = make_default_device_pair(42);
  const CompileOptions copts;
  Partition p1 = partition_phased(g1);
  Partition pb = partition_phased(gb);
  if (p1.subgraphs.size() != pb.subgraphs.size()) {
    std::printf("verify-batching %-12s FAIL (partition diverged: %zu vs %zu)\n",
                name.c_str(), p1.subgraphs.size(), pb.subgraphs.size());
    return false;
  }
  const Placement cpu(p1.subgraphs.size(), DeviceKind::kCpu);
  const ExecutionPlan plan1 =
      ExecutionPlan::build(g1, std::move(p1), cpu, devices, copts);
  const ExecutionPlan planb =
      ExecutionPlan::build(gb, std::move(pb), cpu, devices, copts);
  SimExecutor executor(devices);

  std::vector<std::map<NodeId, Tensor>> feeds;
  std::vector<ExecutionResult> singles;
  for (int64_t i = 0; i < batch; ++i) {
    feeds.push_back(models::make_random_feeds(g1, rng));
    singles.push_back(executor.run(plan1, feeds.back()));
  }
  std::vector<const std::map<NodeId, Tensor>*> ptrs;
  for (const auto& f : feeds) ptrs.push_back(&f);
  const ExecutionResult batched = executor.run(planb, serve::stack_feeds(ptrs));
  const auto rows =
      serve::split_outputs(batched.outputs, static_cast<size_t>(batch));
  for (int64_t i = 0; i < batch; ++i) {
    if (rows[static_cast<size_t>(i)].size() != singles[i].outputs.size()) {
      std::printf("verify-batching %-12s FAIL (output arity)\n", name.c_str());
      return false;
    }
    for (size_t o = 0; o < rows[static_cast<size_t>(i)].size(); ++o) {
      const Tensor& got = rows[static_cast<size_t>(i)][o];
      const Tensor& want = singles[i].outputs[o];
      if (got.shape() != want.shape() ||
          std::memcmp(got.raw_data(), want.raw_data(), got.byte_size()) != 0) {
        std::printf(
            "verify-batching %-12s FAIL (row %lld output %zu diverged)\n",
            name.c_str(), static_cast<long long>(i), o);
        return false;
      }
    }
  }
  std::printf("verify-batching %-12s OK (batch %lld == %lld singles, "
              "bit-identical)\n",
              name.c_str(), static_cast<long long>(batch),
              static_cast<long long>(batch));
  return true;
}

struct FlightConfig {
  std::string dump_dir = "flight-dump";  // per-model subdirectories
  int workers = 2;
  int requests = 24;  // healthy phase
  int storm = 8;      // storm phase: deadlines already expired at admission
  uint64_t seed = 42;
  bool json = false;
  std::string scheduler = "greedy-correction";
};

// Seeded deadline-miss storm through a real DuetServer. A healthy burst
// fills the rings with normal traffic, then `storm` requests arrive with
// deadlines that expired before admission — every pickup sheds, the
// miss-burst trigger fires mid-run, and the server writes the post-mortem
// dump into <dump_dir>/<model>/. Fails when no dump landed.
bool flight_one(const std::string& label, duet::Graph model,
                const FlightConfig& cfg) {
  using namespace duet;
  // Counters (serve.flight_dumps etc.) are gated on the telemetry switch;
  // the flight recorder itself is always on.
  telemetry::ScopedTelemetry telemetry_on(true);
  telemetry::FlightRecorder::instance().clear();

  const std::filesystem::path dir = std::filesystem::path(cfg.dump_dir) / label;

  serve::ServeOptions sopts;
  sopts.workers = cfg.workers;
  sopts.queue_capacity =
      static_cast<size_t>(cfg.requests) + static_cast<size_t>(cfg.storm) + 8;
  sopts.engine.scheduler = cfg.scheduler;
  sopts.engine.seed = cfg.seed;
  sopts.observability.dump_dir = dir.string();
  sopts.observability.trigger.miss_burst = 3;
  sopts.observability.trigger.miss_window_ms = 10e3;
  serve::DuetServer server(std::move(model), sopts);

  Rng rng(cfg.seed);
  const auto feeds = models::make_random_feeds(server.engine().model(), rng);

  std::vector<std::future<serve::Response>> futures;
  futures.reserve(static_cast<size_t>(cfg.requests));
  for (int i = 0; i < cfg.requests; ++i) {
    futures.push_back(server.submit(feeds));
  }
  size_t ok = 0;
  for (auto& f : futures) {
    ok += f.get().status == serve::RequestStatus::kOk ? 1 : 0;
  }
  futures.clear();

  for (int i = 0; i < cfg.storm; ++i) {
    futures.push_back(server.submit(feeds, /*deadline_s=*/1e-9));
  }
  size_t shed = 0;
  for (auto& f : futures) {
    shed += f.get().status == serve::RequestStatus::kShed ? 1 : 0;
  }
  server.drain();

  const serve::ServerStats stats = server.stats();
  const std::filesystem::path trace_path = dir / "flight_trace.json";
  const std::filesystem::path summary_path = dir / "flight_summary.json";
  const bool dumped = stats.flight_dumps > 0 &&
                      std::filesystem::exists(trace_path) &&
                      std::filesystem::exists(summary_path);
  const bool pass = dumped && ok > 0 && shed > 0;

  if (cfg.json) {
    using telemetry::json_escape;
    std::string doc = "{";
    doc += "\"model\":\"" + json_escape(label) + "\",";
    doc += "\"healthy_ok\":" + std::to_string(ok) + ",";
    doc += "\"storm_shed\":" + std::to_string(shed) + ",";
    doc += "\"slo_breaches\":" + std::to_string(stats.slo_breaches) + ",";
    doc += "\"flight_dumps\":" + std::to_string(stats.flight_dumps) + ",";
    doc += "\"events_recorded\":" +
           std::to_string(telemetry::FlightRecorder::instance().recorded()) +
           ",";
    doc += "\"trace\":\"" + json_escape(trace_path.string()) + "\",";
    doc += "\"summary\":\"" + json_escape(summary_path.string()) + "\",";
    doc += std::string("\"ok\":") + (pass ? "true" : "false") + "}";
    std::string err;
    if (!telemetry::validate_json(doc, &err)) {
      std::fprintf(stderr, "flight %s: invalid JSON: %s\n", label.c_str(),
                   err.c_str());
      return false;
    }
    std::printf("%s\n", doc.c_str());
  } else {
    std::printf(
        "flight %-12s %zu/%d ok, %zu/%d shed, %llu breaches | %s -> %s\n",
        label.c_str(), ok, cfg.requests, shed, cfg.storm,
        static_cast<unsigned long long>(stats.slo_breaches),
        dumped ? "dump" : "NO DUMP", trace_path.string().c_str());
  }
  return pass;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace duet;

  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "--help" || cmd == "-h") usage_exit(argv[0], 0);

  // Anything that is not a flag must be a known subcommand; everything else
  // is a usage error (exit 2), not a silent fall-through into the default
  // schedule-report path.
  if (!cmd.empty() && cmd[0] != '-' && cmd != "cache" && cmd != "verify" &&
      cmd != "analyze" && cmd != "lint" && cmd != "trace" && cmd != "stats" &&
      cmd != "schedule" && cmd != "serve-bench" && cmd != "flight" &&
      cmd != "shapes" && cmd != "crossover") {
    std::fprintf(stderr, "unknown subcommand: %s\n", cmd.c_str());
    usage(argv[0]);
  }

  if (cmd == "shapes" || cmd == "crossover") {
    std::vector<std::string> names;
    bool json = false;
    bool symbolic_mode = cmd == "crossover";  // crossover is always symbolic
    symbolic::SymbolicOptions sym_opts;
    symbolic::CrossoverOptions x_opts;
    bool saw_sym = false;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (arg == "--all") {
        append_all_models(&names);
      } else if (arg == "--symbolic" && cmd == "shapes") {
        symbolic_mode = true;
      } else if (arg == "--sym") {
        const std::string spec = next();
        std::string sym_name;
        symbolic::SymRange range;
        if (!parse_sym_spec(spec, &sym_name, &range)) {
          std::fprintf(stderr,
                       "invalid --sym spec \"%s\" (expected NAME=LO..HI with "
                       "1 <= LO <= HI)\n",
                       spec.c_str());
          usage(argv[0]);
        }
        // The first spec names the dimension the scan/bind uses; later specs
        // just declare additional ranges.
        if (!saw_sym) {
          saw_sym = true;
          symbolic_mode = true;
          sym_opts.batch_symbol = sym_name;
          x_opts.symbol = sym_name;
          x_opts.lo = range.lo;
          x_opts.hi = range.hi;
        }
        sym_opts.domain[sym_name] = range;
      } else if (arg == "--json") {
        json = true;
      } else if (arg == "--help" || arg == "-h") {
        usage_exit(argv[0], 0);
      } else if (arg.rfind("-", 0) == 0) {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        usage(argv[0]);
      } else {
        names.push_back(arg);
      }
    }
    names = resolve_model_list(argv[0], std::move(names));
    bool all_ok = true;
    try {
      for (const std::string& name : names) {
        if (cmd == "shapes") {
          all_ok &= shapes_one(name, models::build_by_name(name),
                               symbolic_mode, sym_opts, json);
        } else {
          all_ok &= crossover_one(name, models::build_by_name(name), sym_opts,
                                  x_opts, json);
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return all_ok ? 0 : 1;
  }

  if (cmd == "serve-bench") {
    std::vector<std::string> names;
    ServeBenchConfig cfg;
    FleetBenchConfig fleet_cfg;
    bool fleet_mode = false;
    bool verify_batching = false;
    int64_t verify_batch = 3;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (arg == "--all") {
        append_all_models(&names);
      } else if (arg == "--models") {
        append_csv_models(next(), &names);
        fleet_mode = true;
      } else if (arg == "--tenants") {
        fleet_cfg.tenants = parse_int(argv[0], arg, next());
        fleet_mode = true;
      } else if (arg == "--max-batch") {
        const int b = parse_int(argv[0], arg, next());
        fleet_cfg.max_batch = b;
        verify_batch = b;
        fleet_mode = true;
      } else if (arg == "--verify-batching") {
        verify_batching = true;
      } else if (arg == "--qps") {
        cfg.qps = parse_double(argv[0], arg, next());
        fleet_cfg.qps = cfg.qps;
      } else if (arg == "--workers") {
        cfg.workers = parse_int(argv[0], arg, next());
        fleet_cfg.workers = cfg.workers;
      } else if (arg == "--deadline-ms") {
        cfg.deadline_ms = parse_double(argv[0], arg, next());
        fleet_cfg.deadline_ms = cfg.deadline_ms;
      } else if (arg == "--requests") {
        cfg.requests = parse_int(argv[0], arg, next());
        fleet_cfg.requests = cfg.requests;
      } else if (arg == "--seed") {
        cfg.seed = static_cast<uint64_t>(parse_int(argv[0], arg, next()));
        fleet_cfg.seed = cfg.seed;
      } else if (arg == "--json") {
        cfg.json = true;
        fleet_cfg.json = true;
      } else if (arg == "--out") {
        cfg.out_dir = next();
      } else if (arg == "--metrics-out") {
        cfg.metrics_out = next();
      } else if (arg == "--scheduler") {
        cfg.scheduler = next();
        fleet_cfg.scheduler = cfg.scheduler;
      } else if (arg == "--help" || arg == "-h") {
        usage_exit(argv[0], 0);
      } else if (arg.rfind("-", 0) == 0) {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        usage(argv[0]);
      } else {
        names.push_back(arg);
      }
    }
    names = resolve_model_list(argv[0], std::move(names));
    if (cfg.workers <= 0 || cfg.requests <= 0) {
      std::fprintf(stderr, "--workers and --requests must be positive\n");
      usage(argv[0]);
    }
    if (fleet_cfg.tenants <= 0 || fleet_cfg.max_batch < 1) {
      std::fprintf(stderr, "--tenants and --max-batch must be positive\n");
      usage(argv[0]);
    }
    bool all_ok = true;
    try {
      if (verify_batching) {
        for (const std::string& name : names) {
          all_ok &= verify_batching_one(name, std::max<int64_t>(verify_batch, 2));
        }
      } else if (fleet_mode) {
        all_ok = fleet_bench(names, fleet_cfg);
      } else {
        for (const std::string& name : names) {
          all_ok &= serve_bench_one(name, models::build_by_name(name), cfg);
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return all_ok ? 0 : 1;
  }

  if (cmd == "flight") {
    std::vector<std::string> names;
    FlightConfig cfg;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (arg == "--all") {
        append_all_models(&names);
      } else if (arg == "--dump") {
        cfg.dump_dir = next();
      } else if (arg == "--workers") {
        cfg.workers = parse_int(argv[0], arg, next());
      } else if (arg == "--requests") {
        cfg.requests = parse_int(argv[0], arg, next());
      } else if (arg == "--storm") {
        cfg.storm = parse_int(argv[0], arg, next());
      } else if (arg == "--seed") {
        cfg.seed = static_cast<uint64_t>(parse_int(argv[0], arg, next()));
      } else if (arg == "--json") {
        cfg.json = true;
      } else if (arg == "--scheduler") {
        cfg.scheduler = next();
      } else if (arg == "--help" || arg == "-h") {
        usage_exit(argv[0], 0);
      } else if (arg.rfind("-", 0) == 0) {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        usage(argv[0]);
      } else {
        names.push_back(arg);
      }
    }
    names = resolve_model_list(argv[0], std::move(names));
    if (cfg.dump_dir.empty()) usage(argv[0]);
    if (cfg.workers <= 0 || cfg.requests <= 0 || cfg.storm <= 0) {
      std::fprintf(stderr,
                   "--workers, --requests and --storm must be positive\n");
      usage(argv[0]);
    }
    bool all_ok = true;
    try {
      for (const std::string& name : names) {
        all_ok &= flight_one(name, models::build_by_name(name), cfg);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return all_ok ? 0 : 1;
  }

  if (cmd == "lint") {
    std::vector<std::string> names;
    std::string sarif_path;
    bool json = false;
    DuetOptions options;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (arg == "--all") {
        append_all_models(&names);
      } else if (arg == "--sarif") {
        sarif_path = next();
      } else if (arg == "--json") {
        json = true;
      } else if (arg == "--scheduler") {
        options.scheduler = next();
      } else if (arg == "--help" || arg == "-h") {
        usage_exit(argv[0], 0);
      } else if (arg.rfind("-", 0) == 0) {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        usage(argv[0]);
      } else {
        names.push_back(arg);
      }
    }
    names = resolve_model_list(argv[0], std::move(names));

    VerifyResult combined;
    bool all_ok = true;
    try {
      const auto report = [&](const std::string& label, const VerifyResult& r,
                              const std::string& extra) {
        all_ok &= r.ok();
        if (json) {
          const std::string doc = lint_document(label, r);
          std::string err;
          if (!telemetry::validate_json(doc, &err)) {
            std::fprintf(stderr, "lint %s: invalid JSON produced: %s\n",
                         label.c_str(), err.c_str());
            all_ok = false;
            return;
          }
          std::printf("%s\n", doc.c_str());
          return;
        }
        std::printf("lint %-14s %s %zu error(s), %zu warning(s)%s%s\n",
                    label.c_str(), r.ok() ? "OK  " : "FAIL",
                    r.error_count(), r.warning_count(),
                    extra.empty() ? "" : " | ", extra.c_str());
        if (!r.diagnostics().empty()) std::printf("%s", r.to_string().c_str());
      };

      for (const std::string& name : names) {
        VerifyResult result =
            lint_model(name, models::build_by_name(name), options);
        report(name, result, "");
        combined.merge(std::move(result));
      }

      // The serve-protocol model checker runs once per invocation: its
      // artifact is the protocol, not any model.
      mc::ExploreResult mc_result = mc::explore(mc::ProtocolConfig{});
      report("serve-protocol", mc_result.findings, mc_result.summary());
      all_ok &= mc_result.ok && mc_result.exhausted;
      combined.merge(std::move(mc_result.findings));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }

    if (!sarif_path.empty()) {
      combined.sort();
      const std::string sarif = lint::to_sarif(combined.diagnostics());
      std::string err;
      if (!telemetry::validate_json(sarif, &err)) {
        std::fprintf(stderr, "SARIF export is invalid JSON: %s\n", err.c_str());
        return 1;
      }
      std::ofstream out(sarif_path);
      out << sarif;
      if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", sarif_path.c_str());
        return 1;
      }
      std::printf("wrote %s (%zu result(s), %zu rule(s))\n", sarif_path.c_str(),
                  combined.diagnostics().size(), lint::rule_catalogue().size());
    }
    return all_ok ? 0 : 1;
  }

  if (cmd == "cache") {
    std::string action;
    std::string cache_dir = default_cache_dir();
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--cache-dir") {
        if (i + 1 >= argc) usage(argv[0]);
        cache_dir = argv[++i];
      } else if ((arg == "stats" || arg == "clear") && action.empty()) {
        action = arg;
      } else {
        usage(argv[0]);
      }
    }
    if (action.empty()) usage(argv[0]);
    return action == "stats" ? cache_stats_cmd(cache_dir)
                             : cache_clear_cmd(cache_dir);
  }

  if (cmd == "verify" || cmd == "analyze" || cmd == "trace" || cmd == "stats" ||
      cmd == "schedule") {
    std::vector<std::string> names;
    std::vector<std::string> relay_files;
    DuetOptions options;
    std::string out_dir;
    std::string cache_dir = default_cache_dir();
    bool json = false;
    bool no_cache = false;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (arg == "--all") {
        append_all_models(&names);
      } else if (arg == "--relay" && (cmd == "verify" || cmd == "analyze")) {
        relay_files.push_back(next());
      } else if (arg == "--scheduler") {
        options.scheduler = next();
      } else if (arg == "--out" && cmd == "trace") {
        out_dir = next();
      } else if (arg == "--json" && (cmd == "stats" || cmd == "analyze")) {
        json = true;
      } else if (arg == "--cache-dir" && cmd == "schedule") {
        cache_dir = next();
      } else if (arg == "--no-cache" && cmd == "schedule") {
        no_cache = true;
      } else if (arg == "--help" || arg == "-h") {
        usage_exit(argv[0], 0);
      } else if (arg.rfind("--", 0) == 0) {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        usage(argv[0]);
      } else {
        names.push_back(arg);
      }
    }
    names = resolve_model_list(argv[0], std::move(names),
                               /*allow_empty=*/!relay_files.empty());
    if (names.empty() && relay_files.empty()) usage(argv[0]);
    if (cmd == "schedule") {
      if (no_cache) {
        // A/B baseline: every subgraph profiles and compiles from scratch,
        // exactly the pre-cache pipeline.
        ProfileCache::instance().set_enabled(false);
        CompileCache::instance().set_enabled(false);
      } else {
        options.profile_cache_dir = cache_dir;
      }
    }
    // Full interval/slot tables only when analyzing a single model; --all
    // keeps one summary line per model.
    const bool detail = names.size() + relay_files.size() == 1;
    const auto run_one = [&](const std::string& label, Graph model) {
      if (cmd == "analyze") {
        return analyze_one(label, std::move(model), options, detail && !json,
                           json);
      }
      if (cmd == "trace") {
        return trace_one(label, std::move(model), options, out_dir);
      }
      if (cmd == "stats") {
        return stats_one(label, std::move(model), options, json);
      }
      if (cmd == "schedule") {
        return schedule_one(label, std::move(model), options);
      }
      return verify_one(label, std::move(model), options);
    };
    bool all_ok = true;
    try {
      for (const std::string& name : names) {
        all_ok &= run_one(name, models::build_by_name(name));
      }
      for (const std::string& file : relay_files) {
        all_ok &= run_one(file, relay::to_graph(relay::load_module(file)));
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    if (cmd == "schedule") {
      const ProfileCache::Stats s = ProfileCache::instance().stats();
      const uint64_t total = s.hits + s.misses;
      std::printf(
          "profile cache: %llu hits, %llu misses (%.1f%% hit rate)%s\n",
          static_cast<unsigned long long>(s.hits),
          static_cast<unsigned long long>(s.misses),
          total > 0 ? 100.0 * static_cast<double>(s.hits) /
                          static_cast<double>(total)
                    : 0.0,
          no_cache ? " [caches disabled]" : "");
    }
    return all_ok ? 0 : 1;
  }

  std::string model_name = "wide-deep";
  std::string relay_path;
  std::string trace_path;
  std::string dot_path;
  std::string dump_path;
  DuetOptions options;
  int runs = 0;
  bool breakdown = false;
  bool report_json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--model") {
      model_name = next();
    } else if (arg == "--relay") {
      relay_path = next();
    } else if (arg == "--scheduler") {
      options.scheduler = next();
    } else if (arg == "--no-fallback") {
      options.enable_fallback = false;
    } else if (arg == "--nested") {
      options.partition.granularity = PartitionOptions::Granularity::kNested;
      options.partition.nested_max_nodes =
          static_cast<size_t>(parse_int(argv[0], arg, next()));
    } else if (arg == "--runs") {
      runs = parse_int(argv[0], arg, next());
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--dot") {
      dot_path = next();
    } else if (arg == "--dump") {
      dump_path = next();
    } else if (arg == "--breakdown") {
      breakdown = true;
    } else if (arg == "--json") {
      report_json = true;
    } else if (arg == "--no-cache") {
      ProfileCache::instance().set_enabled(false);
      CompileCache::instance().set_enabled(false);
    } else if (arg == "--help" || arg == "-h") {
      usage_exit(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }

  try {
    Graph model = relay_path.empty()
                      ? models::build_by_name(model_name)
                      : relay::to_graph(relay::load_module(relay_path));
    (void)read_file;  // kept for future text-only inputs

    if (!dump_path.empty()) {
      relay::save_module(relay::from_graph(model), dump_path);
      std::printf("wrote %s and %s.weights\n", dump_path.c_str(),
                  dump_path.c_str());
    }

    DuetEngine engine(std::move(model), options);
    const auto mem = engine.plan().memory_report();

    if (report_json) {
      // Machine-readable schedule report: everything the text report says,
      // as one JSON object (validated through the shared writer helpers).
      using telemetry::json_escape;
      using telemetry::json_number;
      const DuetReport& r = engine.report();
      std::string doc = "{";
      doc += "\"model\":\"" + json_escape(engine.model().name()) + "\",";
      doc += "\"scheduler\":\"" + json_escape(options.scheduler) + "\",";
      doc += "\"subgraphs\":" + std::to_string(engine.partition().subgraphs.size()) + ",";
      doc += "\"transfers\":" + std::to_string(engine.plan().transfers().size()) + ",";
      doc += "\"placement\":\"" + json_escape(r.schedule.placement.to_string()) + "\",";
      doc += "\"est_hetero_s\":" + json_number(r.est_hetero_s) + ",";
      doc += "\"est_single_cpu_s\":" + json_number(r.est_single_cpu_s) + ",";
      doc += "\"est_single_gpu_s\":" + json_number(r.est_single_gpu_s) + ",";
      doc += std::string("\"fell_back\":") + (r.fell_back ? "true" : "false") + ",";
      doc += "\"fallback_device\":\"" +
             json_escape(device_kind_name(r.fallback_device)) + "\",";
      doc += "\"memory\":{\"cpu_bytes\":" +
             std::to_string(mem.total(DeviceKind::kCpu)) +
             ",\"gpu_bytes\":" + std::to_string(mem.total(DeviceKind::kGpu)) + "}";
      if (runs > 0) {
        LatencyRecorder rec;
        for (int i = 0; i < runs; ++i) rec.add(engine.latency(true));
        const SummaryStats s = rec.summarize();
        doc += ",\"latency\":{\"runs\":" + std::to_string(runs) +
               ",\"mean_s\":" + json_number(s.mean) +
               ",\"p50_s\":" + json_number(s.p50) +
               ",\"p99_s\":" + json_number(s.p99) +
               ",\"p999_s\":" + json_number(s.p999) + "}";
      }
      doc += "}";
      std::printf("%s\n", doc.c_str());
    } else {
      std::printf("%s", engine.report()
                            .to_string(engine.model(), engine.partition())
                            .c_str());
      if (breakdown) {
        std::printf("\n%s", render_subgraph_breakdown(engine).c_str());
      }

      std::printf(
          "memory: cpu %.1f MiB (weights %.1f), gpu %.1f MiB (weights %.1f)\n",
          mem.total(DeviceKind::kCpu) / 1048576.0,
          mem.weight_bytes[0] / 1048576.0,
          mem.total(DeviceKind::kGpu) / 1048576.0,
          mem.weight_bytes[1] / 1048576.0);

      if (runs > 0) {
        LatencyRecorder rec;
        for (int i = 0; i < runs; ++i) rec.add(engine.latency(true));
        const SummaryStats s = rec.summarize();
        std::printf(
            "latency over %d runs: mean %.3f ms  p50 %.3f  p99 %.3f  p99.9 %.3f\n",
            runs, s.mean * 1e3, s.p50 * 1e3, s.p99 * 1e3, s.p999 * 1e3);
      }
    }

    if (!trace_path.empty() || !dot_path.empty()) {
      Rng rng(1);
      const auto feeds = models::make_random_feeds(engine.model(), rng);
      ExecutionResult result = engine.infer(feeds);
      if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        out << result.timeline.to_chrome_trace();
        std::printf("wrote Chrome trace to %s\n", trace_path.c_str());
      }
      if (!dot_path.empty()) {
        DotOptions dopts;
        const Partition* part = &engine.partition();
        dopts.cluster = [part](NodeId id) { return part->producer_subgraph(id); };
        write_dot_file(engine.model(), dot_path, dopts);
        std::printf("wrote DOT to %s\n", dot_path.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
