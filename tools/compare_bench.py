#!/usr/bin/env python3
"""Perf-trajectory gate: compare BENCH_*.json outputs against committed
baselines (bench/baselines/) and fail on any metric drifting more than the
tolerance.

The repo's benchmark convention makes this workable: headline numbers are
virtual-time (modeled) quantities, deterministic given the code and seeds,
so any drift is a code change, not machine noise. Wall-clock metrics some
benches also record (ccache-style microbenchmarks, real-threaded legs) are
machine-dependent and are excluded from comparison by key pattern plus a
small per-file skip list.

Usage:
  compare_bench.py --baselines bench/baselines --current build/bench
                   [--tolerance 0.10] [--summary summary.md]
  compare_bench.py --self-test --baselines bench/baselines

Exit codes: 0 all metrics within tolerance, 1 regression (or self-test
failure), 2 usage / missing files.
"""

import argparse
import copy
import json
import os
import re
import sys

# Machine-dependent metrics, skipped everywhere: wall-clock seconds,
# nanosecond/microsecond timers, and throughput of the host's own CPU.
SKIP_KEY_RE = re.compile(r"(wall|_ns\b|_ns_|_us\b|_us_|evals_per_sec|"
                         r"overhead_per_request)")

# Per-file extra skips (dotted paths, arrays indexed numerically): metrics
# derived from wall clocks whose names do not say so.
EXTRA_SKIP = {
    "BENCH_4.json": {"speedup", "cache.speedup"},
    "BENCH_8.json": {"record_ns_on", "record_ns_off"},
}


def numeric_leaves(doc, prefix=""):
    """Yields (dotted_path, value) for every numeric scalar in doc."""
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else key
            yield from numeric_leaves(value, path)
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            yield from numeric_leaves(value, f"{prefix}[{i}]")
    elif isinstance(doc, bool):
        return
    elif isinstance(doc, (int, float)):
        yield prefix, float(doc)


def skipped(path, extra_skip):
    bare = re.sub(r"\[\d+\]", "", path)
    return bool(SKIP_KEY_RE.search(path)) or bare in extra_skip


def compare_file(name, base_doc, cur_doc, tolerance):
    """Returns (rows, regressions) where rows are (path, base, cur, drift)."""
    extra_skip = EXTRA_SKIP.get(name, set())
    base = {p: v for p, v in numeric_leaves(base_doc)
            if not skipped(p, extra_skip)}
    cur = dict(numeric_leaves(cur_doc))
    rows, regressions = [], []
    for path, base_v in sorted(base.items()):
        if path not in cur:
            regressions.append((path, base_v, None, None))
            continue
        cur_v = cur[path]
        denom = max(abs(base_v), 1e-12)
        drift = abs(cur_v - base_v) / denom
        rows.append((path, base_v, cur_v, drift))
        if drift > tolerance:
            regressions.append((path, base_v, cur_v, drift))
    return rows, regressions


def self_test(baselines_dir, tolerance):
    """The gate must trip on a seeded perturbation of a real baseline."""
    for name in sorted(os.listdir(baselines_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(baselines_dir, name)) as f:
            base_doc = json.load(f)
        extra_skip = EXTRA_SKIP.get(name, set())
        comparable = [p for p, _ in numeric_leaves(base_doc)
                      if not skipped(p, extra_skip)
                      and abs(dict(numeric_leaves(base_doc))[p]) > 1e-9]
        if not comparable:
            continue
        perturbed = copy.deepcopy(base_doc)
        target = comparable[0]

        def scale(doc, path, factor):
            tokens = re.findall(r"([^.\[\]]+)|\[(\d+)\]", path)
            node = doc
            keys = [k if k else int(i) for k, i in tokens]
            for key in keys[:-1]:
                node = node[key]
            node[keys[-1]] = node[keys[-1]] * factor

        scale(perturbed, target, 1.0 + 2.0 * tolerance)
        _, regressions = compare_file(name, base_doc, perturbed, tolerance)
        if not regressions:
            print(f"SELF-TEST FAILED: {name}: perturbing {target} by "
                  f"{2 * tolerance:.0%} was not flagged")
            return 1
        print(f"self-test: {name}: perturbed {target} -> flagged "
              f"({regressions[0][3]:.1%} drift)")
    print("self-test passed: the regression gate trips on perturbation")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", required=True)
    parser.add_argument("--current")
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument("--summary", help="append a markdown table here")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test(args.baselines, args.tolerance))
    if not args.current:
        parser.error("--current is required unless --self-test")

    failures = 0
    summary_lines = ["| bench | metrics | worst drift | status |",
                     "| --- | --- | --- | --- |"]
    names = sorted(n for n in os.listdir(args.baselines)
                   if n.endswith(".json"))
    if not names:
        print(f"no baselines in {args.baselines}", file=sys.stderr)
        sys.exit(2)
    for name in names:
        cur_path = os.path.join(args.current, name)
        if not os.path.exists(cur_path):
            print(f"{name}: MISSING from {args.current}")
            summary_lines.append(f"| {name} | - | - | missing |")
            failures += 1
            continue
        with open(os.path.join(args.baselines, name)) as f:
            base_doc = json.load(f)
        with open(cur_path) as f:
            cur_doc = json.load(f)
        rows, regressions = compare_file(name, base_doc, cur_doc,
                                         args.tolerance)
        worst = max((r[3] for r in rows if r[3] is not None), default=0.0)
        status = "ok" if not regressions else "REGRESSION"
        print(f"{name}: {len(rows)} metrics, worst drift {worst:.2%} "
              f"[{status}]")
        for path, base_v, cur_v, drift in regressions:
            if cur_v is None:
                print(f"  MISSING METRIC {path} (baseline {base_v:g})")
            else:
                print(f"  {path}: {base_v:g} -> {cur_v:g} "
                      f"({drift:+.1%} vs {args.tolerance:.0%} tolerance)")
        summary_lines.append(
            f"| {name} | {len(rows)} | {worst:.2%} | {status} |")
        failures += len(regressions)

    if args.summary:
        with open(args.summary, "a") as f:
            f.write("\n".join(summary_lines) + "\n")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
